//! Chaos harness for the deterministic fault plane: a seeded
//! [`FaultPlan`] storm (cache-node crashes/restarts, commit-link
//! partitions, lossy broker crashes, duplicated sends) runs against a
//! live region while a seeded workload keeps issuing metadata ops, all
//! in virtual time on a single driver thread.
//!
//! Properties checked against an unfaulted oracle (the acked ops applied
//! in program order to a plain DFS):
//!
//! * **No acknowledged update is lost.** After the storm clears, the
//!   redelivery windows flush and the queues drain, the faulted region's
//!   backup namespace is identical to the oracle's.
//! * **Degraded reads are never stale.** Every stat issued mid-storm on
//!   a fully committed path succeeds — served from the cache or, in
//!   degraded mode, from the DFS backup — and agrees with the backup.
//! * **The region returns to steady state.** After recovery the
//!   degraded-mode state machine is Healthy again and further reads are
//!   cache-served (the `degraded_reads` counter stops moving).
//!
//! On failure the applied fault trace is written to `target/chaos/` so
//! the run can be replayed from its seed.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use dfs::DfsCluster;
use fsapi::{Credentials, FileKind, FileSystem, FsResult};
use pacon::commit::worker::{CommitWorker, WorkerStep};
use pacon::{DegradedMode, PaconConfig, PaconRegion};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use simnet::{ClientId, FaultEvent, FaultPlan, LatencyProfile, NodeId, Topology};

const NODES: u32 = 3;
/// Virtual ns the driver advances per workload iteration.
const STEP_NS: u64 = 400_000;
/// Storm window in virtual ns (well past the default 8 ms RPC deadline,
/// so mid-storm outages are long enough to force degraded mode).
const STORM_START: u64 = 10_000_000;
const STORM_END: u64 = 250_000_000;
const STORM_ROUNDS: u32 = 6;

/// Stable universe: committed before the storm, stat'd throughout it.
fn sdir(d: usize) -> String {
    format!("/w/s{d}")
}
fn sfile(i: usize) -> String {
    format!("/w/s{}/f{}", (i / 3) % 4, i % 3)
}
/// Transient universe: churned by the mid-storm workload.
fn tdir(d: usize) -> String {
    format!("/w/t{d}")
}
fn tfile(i: usize) -> String {
    format!("/w/t{}/f{}", (i / 3) % 4, i % 3)
}

/// One acked (Ok-returning) workload op, replayed onto the oracle.
#[derive(Debug, Clone)]
enum Acked {
    Mkdir(String),
    Create(String),
    Unlink(String),
    Write(String, Vec<u8>),
}

/// Writes the applied fault trace to `target/chaos/` when the test
/// panics, so a failed storm can be replayed from its artifact.
struct TraceOnPanic<'a> {
    plan: &'a FaultPlan,
    name: String,
}

impl Drop for TraceOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let path = std::path::Path::new(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/chaos"
            ))
            .join(&self.name);
            if self.plan.write_trace(&path).is_ok() {
                eprintln!("fault trace written to {}", path.display());
            }
        }
    }
}

/// Step every worker once; returns true if any made progress.
fn step_all(workers: &mut [CommitWorker]) -> bool {
    let mut progress = false;
    for w in workers.iter_mut() {
        match w.step() {
            WorkerStep::Idle | WorkerStep::Disconnected | WorkerStep::Blocked(_) => {}
            _ => progress = true,
        }
    }
    progress
}

/// Drive the workers until every enqueued op has settled.
fn drain(region: &Arc<PaconRegion>, workers: &mut [CommitWorker]) {
    let mut spins = 0u32;
    while !region.core().drained() {
        step_all(workers);
        spins += 1;
        assert!(spins < 500_000, "commit pipeline did not converge");
    }
}

/// Replay the acked ops in program order onto a fresh, unfaulted DFS and
/// return it. Re-acks of an already-satisfied op (the documented
/// degraded-mode duplicate-detection gap) are absorbed exactly like the
/// region's idempotent commit path absorbs them: apply-and-ignore.
fn oracle_dfs(
    profile: &Arc<LatencyProfile>,
    cred: &Credentials,
    acked: &[Acked],
) -> Arc<DfsCluster> {
    let dfs = DfsCluster::with_default_config(Arc::clone(profile));
    let fs = dfs.client();
    fs.mkdir("/w", cred, 0o777).unwrap();
    for op in acked {
        let _ = match op {
            Acked::Mkdir(p) => fs.mkdir(p, cred, 0o755),
            Acked::Create(p) => fs.create(p, cred, 0o644),
            Acked::Unlink(p) => fs.unlink(p, cred),
            Acked::Write(p, data) => fs.write(p, cred, 0, data).map(|_| ()),
        };
    }
    dfs
}

/// After the storm has cleared, pull the degraded-mode state machine
/// back to Healthy by issuing reads with the probe interval elapsing
/// between them.
fn recover(
    region: &Arc<PaconRegion>,
    clients: &[pacon::PaconClient],
    cred: &Credentials,
    workers: &mut [CommitWorker],
) {
    let core = region.core();
    let mut guard = 0;
    while core.degraded.mode() != DegradedMode::Healthy {
        core.advance(10_000_000); // > default rpc_deadline: next probe is due
        let p = sfile(guard % 12);
        let st = clients[guard % clients.len()].stat(&p, cred);
        assert!(st.is_ok(), "stable path {p} unreadable during recovery: {st:?}");
        step_all(workers);
        guard += 1;
        assert!(guard < 64, "region never recovered to Healthy");
    }
}

/// Assert the faulted region's backup namespace (and the contents of the
/// stable file slots) match the oracle's.
fn assert_matches_oracle(dfs: &Arc<DfsCluster>, oracle: &Arc<DfsCluster>, cred: &Credentials) {
    let got = dfs.snapshot();
    let want = oracle.snapshot();
    assert_eq!(got, want, "faulted namespace diverged from the oracle");
    let got_fs = dfs.client();
    let want_fs = oracle.client();
    for i in 0..12 {
        let p = sfile(i);
        assert_eq!(
            got_fs.read(&p, cred, 0, 4096).ok(),
            want_fs.read(&p, cred, 0, 4096).ok(),
            "contents of {p} diverged from the oracle"
        );
    }
}

/// Scenario A: the full storm (cache crashes included) over a namespace
/// workload, with committed paths stat'd throughout.
fn cache_storm(seed: u64) {
    let profile = Arc::new(LatencyProfile::zero());
    let cred = Credentials::new(1, 1);
    let dfs = DfsCluster::with_default_config(Arc::clone(&profile));
    let mut config = PaconConfig::new("/w", Topology::new(NODES, 1), cred);
    // Keep duplicate-create spins (the documented degraded-mode
    // admission gap) from burning 10k commit retries before they drop.
    config.max_commit_retries = 200;
    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    let clients: Vec<_> = (0..NODES).map(|i| region.client(ClientId(i))).collect();
    let mut workers: Vec<_> = (0..NODES as usize).map(|n| region.take_worker(n)).collect();
    let core = region.core();

    // Phase 0: build and fully commit the stable universe.
    let mut acked: Vec<Acked> = Vec::new();
    for d in 0..4 {
        clients[d % 3].mkdir(&sdir(d), &cred, 0o755).unwrap();
        acked.push(Acked::Mkdir(sdir(d)));
    }
    for i in 0..12 {
        clients[(i / 3) % 3].create(&sfile(i), &cred, 0o644).unwrap();
        acked.push(Acked::Create(sfile(i)));
    }
    drain(&region, &mut workers);

    let plan = FaultPlan::storm(seed, NODES, STORM_START, STORM_END, STORM_ROUNDS);
    let _trace = TraceOnPanic { plan: &plan, name: format!("cache-storm-{seed}.trace") };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let oracle_check = dfs.client();

    // Phase 1: the storm. One namespace op and one stable stat per tick.
    let mut last_epoch = core.cache_cluster.ring_epoch();
    while core.sim_ns() < STORM_END + STEP_NS {
        core.advance(STEP_NS);
        for ev in plan.advance_to(core.sim_ns()) {
            region.apply_fault(ev);
        }
        // Ring-epoch monotonicity holds through every fault event.
        let epoch = core.cache_cluster.ring_epoch();
        assert!(epoch >= last_epoch, "ring epoch regressed: {last_epoch} -> {epoch}");
        last_epoch = epoch;

        match rng.gen_range(0u32..9) {
            0..=1 => {
                let d = rng.gen_range(0usize..4);
                if clients[d % 3].mkdir(&tdir(d), &cred, 0o755).is_ok() {
                    acked.push(Acked::Mkdir(tdir(d)));
                }
            }
            2..=5 => {
                let i = rng.gen_range(0usize..12);
                if clients[(i / 3) % 3].create(&tfile(i), &cred, 0o644).is_ok() {
                    acked.push(Acked::Create(tfile(i)));
                }
            }
            _ => {
                let i = rng.gen_range(0usize..12);
                if clients[(i / 3) % 3].unlink(&tfile(i), &cred).is_ok() {
                    acked.push(Acked::Unlink(tfile(i)));
                }
            }
        }

        // A committed path must stay readable through any fault — from
        // the cache, or degraded from the backup — and must agree with
        // the backup (never staler than the DFS).
        let p = sfile(rng.gen_range(0usize..12));
        let st = clients[rng.gen_range(0usize..3)].stat(&p, &cred);
        assert!(st.is_ok(), "stable path {p} unreadable mid-storm: {st:?}");
        let backup = oracle_check.stat(&p, &cred).expect("stable path on backup");
        assert_eq!(st.unwrap().kind, backup.kind, "degraded read of {p} staler than backup");

        step_all(&mut workers);
    }
    assert_eq!(plan.remaining(), 0, "storm events all applied");

    // Phase 2: recovery. Heal is already scripted; re-warm the cache,
    // flush the redelivery windows, drain the queues.
    recover(&region, &clients, &cred, &mut workers);
    for c in &clients {
        c.flush_publishes().unwrap();
    }
    drain(&region, &mut workers);
    for c in &clients {
        // A second flush reconciles the window against the drained
        // broker: everything must now be provably consumed.
        c.flush_publishes().unwrap();
        assert_eq!(c.unacked_publishes(), 0, "redelivery window not empty after drain");
    }

    // No acknowledged update lost: backup namespace == oracle namespace.
    let oracle = oracle_dfs(&profile, &cred, &acked);
    assert_matches_oracle(&dfs, &oracle, &cred);

    // Steady state: reads are cache-served again.
    assert_eq!(core.degraded.mode(), DegradedMode::Healthy);
    let degraded_before = core.counters.get("degraded_reads");
    for i in 0..12 {
        let st = clients[i % 3].stat(&sfile(i), &cred).unwrap();
        assert_eq!(st.kind, FileKind::File);
    }
    assert_eq!(
        core.counters.get("degraded_reads"),
        degraded_before,
        "post-recovery reads still falling through to the backup"
    );

    // If the storm crashed a cache node mid-traffic, the fault plane must
    // actually have been exercised: retries burned, degraded reads
    // served, and the window closed by a recovery.
    let crashed = plan.trace().iter().any(|l| l.contains("CrashCacheNode"));
    if crashed {
        assert!(core.counters.get("rpc_retries") > 0, "no RPC retries despite a crash");
        assert!(core.counters.get("degraded_reads") > 0, "no degraded reads despite a crash");
        assert!(
            core.counters.get("degraded_recoveries") > 0,
            "degraded window never closed"
        );
        assert!(core.degraded.window_ns(core.sim_ns()) > 0);
    }
}

/// Fresh WAL directory per run (durable scenario).
fn fresh_wal_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "pacon-chaos-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Link-fault-only plan: partitions, lossy broker crashes and duplicated
/// sends — the cache stays up, so inline-write data rides the WAL'd,
/// idempotent commit path through every outage.
fn link_plan(seed: u64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = (STORM_END - STORM_START) / STORM_ROUNDS as u64;
    let mut events = Vec::new();
    for r in 0..STORM_ROUNDS {
        let slot = STORM_START + r as u64 * span;
        let t_fault = slot + rng.gen_range(0..span / 2);
        let t_clear = slot + span / 2 + rng.gen_range(0..span / 2);
        let node = NodeId(rng.gen_range(0..NODES));
        match rng.gen_range(0u32..3) {
            0 => {
                events.push((t_fault, FaultEvent::PartitionCommitLink(node)));
                events.push((t_clear, FaultEvent::HealCommitLink(node)));
            }
            1 => {
                events.push((t_fault, FaultEvent::CrashBroker(node)));
                events.push((t_clear, FaultEvent::HealCommitLink(node)));
            }
            _ => {
                let count = rng.gen_range(1u32..4);
                events.push((t_fault, FaultEvent::DuplicateCommitSends { node, count }));
            }
        }
    }
    FaultPlan::from_events(events)
}

/// Scenario B: broker loss and duplication under a write-heavy workload
/// on a durable (WAL'd) region. Acked writes must survive lost broker
/// buffers via publisher-side redelivery, and duplicated deliveries must
/// be absorbed; final file contents must match the oracle byte-for-byte.
fn link_storm_with_writes(seed: u64) -> FsResult<()> {
    let profile = Arc::new(LatencyProfile::zero());
    let cred = Credentials::new(1, 1);
    let dfs = DfsCluster::with_default_config(Arc::clone(&profile));
    let wal_dir = fresh_wal_dir("link");
    let config =
        PaconConfig::new("/w", Topology::new(NODES, 1), cred).with_durability(&wal_dir);
    let region = PaconRegion::launch_paused(config, &dfs)?;
    let clients: Vec<_> = (0..NODES).map(|i| region.client(ClientId(i))).collect();
    let mut workers: Vec<_> = (0..NODES as usize).map(|n| region.take_worker(n)).collect();
    let core = region.core();

    let mut acked: Vec<Acked> = Vec::new();
    for d in 0..4 {
        clients[d % 3].mkdir(&sdir(d), &cred, 0o755)?;
        acked.push(Acked::Mkdir(sdir(d)));
    }
    for i in 0..12 {
        clients[(i / 3) % 3].create(&sfile(i), &cred, 0o644)?;
        acked.push(Acked::Create(sfile(i)));
    }
    drain(&region, &mut workers);

    let plan = link_plan(seed);
    let _trace = TraceOnPanic { plan: &plan, name: format!("link-storm-{seed}.trace") };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5851f42d4c957f2d);

    let mut last_epoch = core.cache_cluster.ring_epoch();
    while core.sim_ns() < STORM_END + STEP_NS {
        core.advance(STEP_NS);
        for ev in plan.advance_to(core.sim_ns()) {
            region.apply_fault(ev);
        }
        let epoch = core.cache_cluster.ring_epoch();
        assert!(epoch >= last_epoch, "ring epoch regressed: {last_epoch} -> {epoch}");
        last_epoch = epoch;
        let i = rng.gen_range(0usize..12);
        let c = &clients[(i / 3) % 3];
        match rng.gen_range(0u32..8) {
            0..=4 => {
                let b = rng.gen_range(0u32..256) as u8;
                let data = vec![b; (b as usize % 24) + 1];
                if c.write(&sfile(i), &cred, 0, &data).is_ok() {
                    acked.push(Acked::Write(sfile(i), data));
                }
            }
            5 => {
                if c.unlink(&sfile(i), &cred).is_ok() {
                    acked.push(Acked::Unlink(sfile(i)));
                }
            }
            _ => {
                if c.create(&sfile(i), &cred, 0o644).is_ok() {
                    acked.push(Acked::Create(sfile(i)));
                }
            }
        }
        step_all(&mut workers);
    }
    assert_eq!(plan.remaining(), 0, "storm events all applied");

    // Links are healed: flush every redelivery window, then drain.
    for c in &clients {
        c.flush_publishes()?;
    }
    drain(&region, &mut workers);
    for c in &clients {
        c.flush_publishes()?;
        assert_eq!(c.unacked_publishes(), 0, "redelivery window not empty after drain");
    }

    let oracle = oracle_dfs(&profile, &cred, &acked);
    assert_matches_oracle(&dfs, &oracle, &cred);

    // The cache never went down, so degraded mode never opened.
    assert_eq!(core.degraded.mode(), DegradedMode::Healthy);
    assert_eq!(core.counters.get("degraded_reads"), 0);

    let _ = std::fs::remove_dir_all(&wal_dir);
    Ok(())
}

/// Reshard-heavy plan: every round reshapes the ring (leave, then either
/// a crash of the migrating node mid-transfer or a clean re-join), mixed
/// with plain cache crashes so elasticity and the fault plane overlap.
fn reshard_plan(seed: u64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = (STORM_END - STORM_START) / STORM_ROUNDS as u64;
    let mut events = Vec::new();
    for r in 0..STORM_ROUNDS {
        let slot = STORM_START + r as u64 * span;
        let t_fault = slot + rng.gen_range(0..span / 4);
        let t_mid = slot + span / 4 + rng.gen_range(0..span / 4);
        let t_clear = slot + span / 2 + rng.gen_range(0..span / 2);
        let node = NodeId(rng.gen_range(0..NODES));
        match rng.gen_range(0u32..3) {
            // Clean elasticity cycle: shrink the ring, then grow it back.
            // (If the leave's transfer is still in flight at t_clear the
            // join is a documented no-op; per-tick pumping below makes
            // that rare.)
            0 => {
                events.push((t_fault, FaultEvent::LeaveNode(node)));
                events.push((t_clear, FaultEvent::JoinNode(node)));
            }
            // Crash the migrating node itself mid-transfer: the leave
            // force-completes (or an in-flight join aborts), then the
            // victim restarts cold and rejoins.
            1 => {
                events.push((t_fault, FaultEvent::LeaveNode(node)));
                events.push((t_mid, FaultEvent::CrashDuringMigration));
                events.push((t_clear, FaultEvent::RestartCacheNode(node)));
                events.push(((t_clear + span / 8).min(STORM_END), FaultEvent::JoinNode(node)));
            }
            // Plain crash/restart overlapping whatever migration the
            // neighbouring rounds left running.
            _ => {
                events.push((t_fault, FaultEvent::CrashCacheNode(node)));
                events.push((t_clear, FaultEvent::RestartCacheNode(node)));
            }
        }
    }
    FaultPlan::from_events(events)
}

/// Scenario C: live resharding under the fault plane. The ring shrinks,
/// grows and loses nodes mid-transfer while the metadata workload keeps
/// running; the driver pumps the migration a few keys per tick, exactly
/// like a background transfer thread would. Every acked namespace update
/// must still reach the backup, every mid-storm stat of a committed path
/// must stay readable and agree with the backup, the ring epoch must be
/// monotonic tick over tick, and the region must end Healthy with the
/// reshard counters showing real work.
fn reshard_storm(seed: u64) {
    let profile = Arc::new(LatencyProfile::zero());
    let cred = Credentials::new(1, 1);
    let dfs = DfsCluster::with_default_config(Arc::clone(&profile));
    let mut config = PaconConfig::new("/w", Topology::new(NODES, 1), cred);
    config.max_commit_retries = 200;
    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    let clients: Vec<_> = (0..NODES).map(|i| region.client(ClientId(i))).collect();
    let mut workers: Vec<_> = (0..NODES as usize).map(|n| region.take_worker(n)).collect();
    let core = region.core();

    let mut acked: Vec<Acked> = Vec::new();
    for d in 0..4 {
        clients[d % 3].mkdir(&sdir(d), &cred, 0o755).unwrap();
        acked.push(Acked::Mkdir(sdir(d)));
    }
    for i in 0..12 {
        clients[(i / 3) % 3].create(&sfile(i), &cred, 0o644).unwrap();
        acked.push(Acked::Create(sfile(i)));
    }
    drain(&region, &mut workers);

    let plan = reshard_plan(seed);
    let _trace = TraceOnPanic { plan: &plan, name: format!("reshard-storm-{seed}.trace") };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2545f4914f6cdd1d);
    let oracle_check = dfs.client();

    let mut last_epoch = core.cache_cluster.ring_epoch();
    while core.sim_ns() < STORM_END + STEP_NS {
        core.advance(STEP_NS);
        for ev in plan.advance_to(core.sim_ns()) {
            region.apply_fault(ev);
        }
        let epoch = core.cache_cluster.ring_epoch();
        assert!(epoch >= last_epoch, "ring epoch regressed: {last_epoch} -> {epoch}");
        last_epoch = epoch;

        // Background transfer: a bounded batch of keys per tick.
        region.pump_reshard(rng.gen_range(1usize..8));

        match rng.gen_range(0u32..9) {
            0..=1 => {
                let d = rng.gen_range(0usize..4);
                if clients[d % 3].mkdir(&tdir(d), &cred, 0o755).is_ok() {
                    acked.push(Acked::Mkdir(tdir(d)));
                }
            }
            2..=5 => {
                let i = rng.gen_range(0usize..12);
                if clients[(i / 3) % 3].create(&tfile(i), &cred, 0o644).is_ok() {
                    acked.push(Acked::Create(tfile(i)));
                }
            }
            _ => {
                let i = rng.gen_range(0usize..12);
                if clients[(i / 3) % 3].unlink(&tfile(i), &cred).is_ok() {
                    acked.push(Acked::Unlink(tfile(i)));
                }
            }
        }

        // Committed paths stay readable through any reshard state —
        // migrating keys are double-read (new owner then old), crashed
        // owners fall back to the DFS — and never go staler than the
        // backup.
        let p = sfile(rng.gen_range(0usize..12));
        let st = clients[rng.gen_range(0usize..3)].stat(&p, &cred);
        assert!(st.is_ok(), "stable path {p} unreadable mid-reshard: {st:?}");
        let backup = oracle_check.stat(&p, &cred).expect("stable path on backup");
        assert_eq!(st.unwrap().kind, backup.kind, "reshard read of {p} staler than backup");

        step_all(&mut workers);
    }
    assert_eq!(plan.remaining(), 0, "storm events all applied");

    // Heal: CrashDuringMigration picks its own victim, so restart
    // whatever is still down rather than scripting it, then run any
    // in-flight transfer to completion.
    for n in 0..NODES {
        if core.cache_cluster.node_status(NodeId(n)) == memkv::NodeStatus::Down {
            region.apply_fault(FaultEvent::RestartCacheNode(NodeId(n)));
        }
    }
    let mut spins = 0;
    while core.cache_cluster.migration_active() {
        region.pump_reshard(16);
        spins += 1;
        assert!(spins < 50_000, "migration never converged after the storm");
    }
    assert!(core.cache_cluster.ring_epoch() >= last_epoch, "teardown regressed the epoch");

    recover(&region, &clients, &cred, &mut workers);
    for c in &clients {
        c.flush_publishes().unwrap();
    }
    drain(&region, &mut workers);
    for c in &clients {
        c.flush_publishes().unwrap();
        assert_eq!(c.unacked_publishes(), 0, "redelivery window not empty after drain");
    }

    let oracle = oracle_dfs(&profile, &cred, &acked);
    assert_matches_oracle(&dfs, &oracle, &cred);
    assert_eq!(core.degraded.mode(), DegradedMode::Healthy);

    // The storm is not vacuous: every plan schedules at least one
    // membership change, and the report surfaces the reshard telemetry.
    let report = region.report();
    assert!(report.reshard_started > 0, "plan scheduled no reshard");
    assert!(report.ring_epoch > 0, "membership churn left the epoch at zero");
    let text = report.to_string();
    assert!(text.contains("ring:"), "report lost the ring line:\n{text}");
}

/// Satellite audit: a mid-batch cache-node crash must not discard the
/// healthy groups of a multi-stat. Paths whose owner is up are answered
/// from the cache; paths on the crashed owner are salvaged through the
/// retry/degraded path (served from the backup), so every slot of the
/// batch still returns Ok.
#[test]
fn multi_stat_survives_mid_batch_cache_crash() {
    let profile = Arc::new(LatencyProfile::zero());
    let cred = Credentials::new(1, 1);
    let dfs = DfsCluster::with_default_config(Arc::clone(&profile));
    let config = PaconConfig::new("/w", Topology::new(NODES, 1), cred);
    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    let client = region.client(ClientId(0));
    let mut workers: Vec<_> = (0..NODES as usize).map(|n| region.take_worker(n)).collect();
    let core = region.core();

    for d in 0..4 {
        client.mkdir(&sdir(d), &cred, 0o755).unwrap();
    }
    let paths: Vec<String> = (0..12).map(sfile).collect();
    for p in &paths {
        client.create(p, &cred, 0o644).unwrap();
    }
    drain(&region, &mut workers);
    // Warm the cache so the batch is cache-resident, then crash one
    // owner mid-universe.
    for p in &paths {
        client.stat(p, &cred).unwrap();
    }
    region.apply_fault(FaultEvent::CrashCacheNode(NodeId(1)));

    let degraded_before = core.counters.get("degraded_reads");
    let stats = client.stat_many(&paths, &cred);
    assert_eq!(stats.len(), paths.len());
    for (p, st) in paths.iter().zip(&stats) {
        let st = st.as_ref().unwrap_or_else(|e| panic!("{p} lost from the batch: {e:?}"));
        assert_eq!(st.kind, FileKind::File, "{p} came back with the wrong kind");
    }
    // The crashed node's share of the batch went to the backup; the
    // healthy groups did not (the counter moved by less than the batch).
    let fell_through = core.counters.get("degraded_reads") - degraded_before;
    assert!(
        fell_through < paths.len() as u64,
        "every key fell through to the backup — healthy groups were discarded"
    );
}

// ---- fixed seeds: the CI chaos job runs exactly these three ----------

#[test]
fn cache_storm_seed_1() {
    cache_storm(0xC1A050001);
}

#[test]
fn cache_storm_seed_2() {
    cache_storm(0xC1A050002);
}

#[test]
fn cache_storm_seed_3() {
    cache_storm(0xC1A050003);
}

#[test]
fn link_storm_seed_1() {
    link_storm_with_writes(0x11A7_0001).unwrap();
}

#[test]
fn reshard_storm_seed_1() {
    reshard_storm(0x4E5A_0001);
}

#[test]
fn reshard_storm_seed_2() {
    reshard_storm(0x4E5A_0002);
}

#[test]
fn reshard_storm_seed_3() {
    reshard_storm(0x4E5A_0003);
}

/// The two regression seeds below each reproduced a distinct ordering
/// bug in the commit pipeline before the `pending_removals` /
/// `stale_tombstones` machinery existed; they stay pinned.
#[test]
fn cache_storm_regression_stale_survivor() {
    cache_storm(4830043364150732443);
}

#[test]
fn link_storm_regression_unlink_resurrection() {
    link_storm_with_writes(6132581159815284870).unwrap();
}

// ---- randomized storms ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seeded storm preserves the chaos invariants.
    #[test]
    fn any_cache_storm_preserves_acked_updates(seed in any::<u64>()) {
        cache_storm(seed);
    }

    #[test]
    fn any_link_storm_preserves_acked_writes(seed in any::<u64>()) {
        link_storm_with_writes(seed).unwrap();
    }

    #[test]
    fn any_reshard_storm_preserves_acked_updates(seed in any::<u64>()) {
        reshard_storm(seed);
    }
}
