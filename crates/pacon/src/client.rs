//! The per-process Pacon client: Table I semantics over the distributed
//! cache, the commit queue, and the underlying DFS.
//!
//! | op      | cache op        | comm            | commit        |
//! |---------|-----------------|-----------------|---------------|
//! | create  | put             | async           | independent   |
//! | mkdir   | put             | async           | independent   |
//! | rm      | update + delete | async           | independent   |
//! | getattr | get             | n/a, sync miss  | n/a           |
//! | rmdir   | delete subtree  | sync            | barrier       |
//! | readdir | none (DFS call) | sync            | barrier       |
//!
//! Requests outside every known consistent region are redirected to the
//! DFS untouched (weak consistency, Section III.A); merged regions are
//! read-only (Section III.D-4).

use std::sync::Arc;

use dfs::DfsClient;
use fsapi::types::{ACCESS_R, ACCESS_W, ACCESS_X};
use fsapi::{path as fspath, Credentials, FileKind, FileStat, FsError, FsResult, Perm};
use fsapi::FileSystem;
use mq::{Publisher, ReliablePublisher};
use simnet::{charge, ClientId, NodeId, Station};
use syncguard::{level, Mutex, RwLock};

use crate::cache::{CacheError, MetaCache};
use crate::commit::op::{CommitOp, QueueMsg};
use crate::degraded::Mode as DegradedMode;
use crate::eviction;
use crate::metadata::CachedMeta;
use crate::region::{RegionCore, RegionHandle, Route};

/// A merged region: its handle plus a remote cache client.
struct Merged {
    handle: RegionHandle,
    cache: MetaCache,
}

/// One application process's Pacon endpoint.
pub struct PaconClient {
    core: Arc<RegionCore>,
    cache: MetaCache,
    /// Per-node queue publishers; index = node id. A client publishes its
    /// own ops to its node's queue and barrier markers to all queues.
    publishers: Vec<Publisher<QueueMsg>>,
    /// Redelivery wrapper around this client's own-node publisher: commit
    /// ops survive broker loss in the unacked window and are resent after
    /// [`Self::flush_publishes`]. Barrier markers bypass it on purpose —
    /// a barrier during an outage should fail, not silently queue.
    redelivery: ReliablePublisher<QueueMsg>,
    dfs: DfsClient,
    merged: RwLock<Vec<Merged>>,
    id: ClientId,
    node: NodeId,
    /// Memo of the most recently verified parent directory: consecutive
    /// creations in one directory (the common mdtest/N-N pattern) pay the
    /// parent-existence check only once. Invalidated by rmdir.
    parent_memo: Mutex<Option<String>>,
}

/// Encoded-metadata header size (see `CachedMeta::encode`); counted
/// against the small-file threshold together with the key (path) length.
const META_HEADER: usize = 27;

impl PaconClient {
    pub(crate) fn new(
        core: Arc<RegionCore>,
        kv: memkv::KvClient,
        publishers: Vec<Publisher<QueueMsg>>,
        dfs: DfsClient,
        id: ClientId,
        node: NodeId,
    ) -> Self {
        let redelivery = ReliablePublisher::new(publishers[node.index()].clone());
        Self {
            cache: MetaCache::with_faults(kv, Arc::clone(&core)),
            core,
            publishers,
            redelivery,
            dfs,
            merged: RwLock::new(level::CLIENT_VIEW, "pacon.client.merged", Vec::new()),
            id,
            node,
            parent_memo: Mutex::new(level::CLIENT_MEMO, "pacon.client.parent_memo", None),
        }
    }

    /// Merge another application's consistent region into this client's
    /// view (read-only access, Section III.D-4).
    pub fn merge_region(&self, handle: RegionHandle) {
        let cache = MetaCache::new(handle.cache_cluster.remote_client());
        if self.core.config.read_batching {
            // Warm-up: prefetch the merged region's "basic information"
            // (Section III.D-4) — the root record plus every
            // special-permission path — in one batched read so the first
            // accesses after the merge do not each pay a remote miss.
            let mut paths: Vec<&str> = vec![handle.root.as_str()];
            paths.extend(handle.perms.special.iter().map(|(p, _)| p.as_str()));
            let _ = self.batched_get_on(&cache, &paths);
        }
        self.merged.write().push(Merged { handle, cache });
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn profile(&self) -> Arc<simnet::LatencyProfile> {
        Arc::clone(self.core.cache_cluster.profile())
    }

    fn charge_overhead(&self) {
        charge(Station::ClientCpu, self.profile().pacon_client_overhead);
    }

    fn publish(&self, op: CommitOp) -> FsResult<()> {
        self.publish_at(op, None, false, None)
    }

    /// [`Self::publish`] for ops admitted during a degraded window: the
    /// envelope is tagged so the commit worker applies create-if-absent
    /// semantics (the admission check could only see the backup view).
    fn publish_degraded(&self, op: CommitOp) -> FsResult<()> {
        self.publish_at(op, None, true, None)
    }

    /// Publish an op, optionally journaling a data `snapshot` alongside it
    /// (inline writebacks: the WAL must carry the bytes because replay
    /// rebuilds file content from the log, not from the cache).
    fn publish_with_snapshot(&self, op: CommitOp, snapshot: Option<&[u8]>) -> FsResult<()> {
        self.publish_at(op, snapshot, false, None)
    }

    /// Full publish entry point. `ts` carries a pre-allocated publish
    /// timestamp — unlinks stamp themselves *before* marking the removal
    /// pending, so the pending-removal table and the queue envelope agree
    /// on the op's identity.
    fn publish_at(
        &self,
        op: CommitOp,
        snapshot: Option<&[u8]>,
        degraded: bool,
        ts: Option<u64>,
    ) -> FsResult<()> {
        if self.core.config.synchronous_commit {
            return self.commit_synchronously(op);
        }
        if self.core.config.commit_batch_size > 1 {
            return self.publish_buffered(op, snapshot, degraded, ts);
        }
        charge(Station::ClientCpu, self.profile().queue_push);
        let msg = QueueMsg {
            id: self.core.op_identity(&op),
            op,
            client: self.id.0,
            epoch: self.core.board.current_epoch(),
            timestamp: ts.unwrap_or_else(|| self.core.now()),
            degraded,
        };
        // Durable order: count the op in flight, journal it, then send.
        // Enqueued-before-append is what makes truncation safe: `drained()`
        // under the WAL lock proves the log holds no unconfirmed op.
        self.core.note_enqueued();
        if let Err(e) = self.core.wal_append(self.node.index(), &msg, snapshot) {
            self.core.note_completed();
            return Err(e);
        }
        match self.redelivery.publish(msg) {
            Ok(out) => {
                // `pending > 0` = the broker link is down and the op sits
                // in the redelivery window: acknowledged to the caller,
                // still counted in flight, resent on heal/flush.
                if out.pending > 0 {
                    self.core.counters.incr("publishes_buffered");
                }
                Ok(())
            }
            Err(mq::Disconnected) => {
                // Shutdown race. In durable mode the op is already
                // journaled — keep it counted in flight so no truncation
                // can drop it; the next launch replays it.
                if !self.core.durable() {
                    self.core.note_completed();
                }
                Err(FsError::Backend("commit queue closed".into()))
            }
        }
    }

    /// Reconcile this client's redelivery window with its node's broker:
    /// resend commit ops provably lost in a broker crash, deliver ones
    /// buffered while the link was down. Returns how many messages this
    /// call delivered. The chaos driver calls this after healing a link.
    pub fn flush_publishes(&self) -> FsResult<usize> {
        self.redelivery
            .flush()
            .map(|out| out.delivered)
            .map_err(|_| FsError::Backend("commit queue closed".into()))
    }

    /// Commit messages not yet provably consumed by this node's broker.
    pub fn unacked_publishes(&self) -> usize {
        self.redelivery.unacked()
    }

    /// Group commit: buffer the op in the node's publish buffer instead
    /// of dispatching a queue message per op; flush as one batch message
    /// when the buffer reaches the configured size. Coalescing may settle
    /// the op entirely client-side (create×unlink annihilation, writeback
    /// collapse) — those ops complete without ever touching the queue.
    fn publish_buffered(
        &self,
        op: CommitOp,
        snapshot: Option<&[u8]>,
        degraded: bool,
        ts: Option<u64>,
    ) -> FsResult<()> {
        use crate::commit::publish::Buffered;
        let unlink_path = match &op {
            CommitOp::Unlink { path } => Some(path.clone()),
            _ => None,
        };
        let timestamp = ts.unwrap_or_else(|| self.core.now());
        let msg = QueueMsg {
            id: self.core.op_identity(&op),
            op,
            client: self.id.0,
            epoch: self.core.board.current_epoch(),
            timestamp,
            degraded,
        };
        self.core.note_enqueued();
        let node = self.node.index();
        // Journal before the buffer sees the op: coalescing may settle it
        // client-side, but the log keeps the full history (a cancelled
        // create×unlink pair replays in order and nets to nothing).
        if let Err(e) = self.core.wal_append(node, &msg, snapshot) {
            self.core.note_completed();
            return Err(e);
        }
        let mut buf = self.core.publish_bufs[node].lock();
        let outcome = buf.push(msg, self.core.config.commit_batch_coalescing);
        let flush = buf.len() >= self.core.config.commit_batch_size;
        drop(buf);
        match outcome {
            Buffered::Queued => {
                if flush {
                    charge(Station::ClientCpu, self.profile().queue_push);
                    // `flush_publish_buffer` re-takes the lock; a racing
                    // publisher may have flushed first, which is fine —
                    // an empty buffer makes this a no-op.
                    self.core.flush_publish_buffer(node, &self.publishers[node])?;
                }
            }
            Buffered::Cancelled { absorbed } => {
                // The create (plus its trailing writebacks) and this
                // unlink annihilated in the buffer: the file never reaches
                // the DFS. Settle all of them as completed and mirror the
                // worker's post-unlink cleanup on the primary copy.
                for _ in 0..absorbed + 1 {
                    self.core.note_completed();
                }
                self.core.counters.add("coalesced_cancel", absorbed as u64 + 1);
                let path = unlink_path.expect("only unlinks cancel");
                // The unlink settled client-side: its pending-removal
                // mark retires here, not in a commit worker.
                self.core.note_unlink_retired(&path, timestamp);
                if let Some((meta, _)) = self.cache.get(&path) {
                    if meta.removed {
                        self.cache.delete(&path);
                    }
                }
                self.core.staging.lock().remove(path.as_str());
                self.core.maybe_truncate_wals();
            }
            Buffered::Collapsed => {
                // Duplicate writeback absorbed by the buffered one, which
                // reads the current primary copy at commit time anyway.
                self.core.note_completed();
                self.core.counters.incr("coalesced_collapse");
                self.core.maybe_truncate_wals();
            }
        }
        Ok(())
    }

    /// Ablation path: apply the operation to the DFS before returning
    /// (strong primary/backup consistency; no queue, no commit process).
    fn commit_synchronously(&self, op: CommitOp) -> FsResult<()> {
        let cred = self.core.config.cred;
        let res = match &op {
            // lint: allow(commit-path, sync-consistency ablation: applying directly IS this mode)
            CommitOp::Mkdir { path, mode } => self.dfs.mkdir(path, &cred, *mode),
            // lint: allow(commit-path, sync-consistency ablation: applying directly IS this mode)
            CommitOp::Create { path, mode } => self.dfs.create(path, &cred, *mode),
            CommitOp::Unlink { path } => {
                // lint: allow(commit-path, sync-consistency ablation: applying directly IS this mode)
                let r = self.dfs.unlink(path, &cred);
                if r.is_ok() {
                    self.cache.delete(path);
                }
                r
            }
            CommitOp::WriteInline { path } => {
                // Mirror the async worker: free the coalescing slot before
                // reading the primary copy so later writes re-queue.
                self.core.pending_writebacks.lock().remove(path.as_str());
                match self.cache.get(path) {
                    Some((meta, _)) if !meta.removed && !meta.large => {
                        // lint: allow(commit-path, sync-consistency ablation: applying directly IS this mode)
                        self.dfs.write(path, &cred, 0, &meta.inline).map(|_| ())
                    }
                    _ => Ok(()),
                }
            }
            CommitOp::Barrier { .. } => Ok(()),
            // Batches are assembled by the publish buffer, which is never
            // engaged in synchronous-commit mode.
            CommitOp::Batch(_) => unreachable!("no group commit under synchronous_commit"),
        };
        if res.is_ok() {
            if let Some(path) = op.path() {
                let _ = self.cache.update::<()>(path, |m| {
                    m.committed = true;
                    Ok(())
                });
            }
        }
        res
    }

    /// Batch permission check — a local table match, never a traversal
    /// (Section III.C). Under the ablation flag it instead walks every
    /// in-region ancestor with a distributed-cache lookup, the way a
    /// traditional hierarchical check would.
    fn check_perm(&self, path: &str, cred: &Credentials, want: u8) -> FsResult<()> {
        if self.core.config.hierarchical_permission_check {
            let ancs: Vec<&str> = fspath::ancestors(path)
                .into_iter()
                .filter(|anc| self.core.contains(anc) && *anc != self.core.root)
                .collect();
            // Charged cache lookups for every in-region component — one
            // batched round per shard node rather than one per component;
            // the permission bits themselves still come from the region
            // table so the ablation changes cost, not semantics.
            if !ancs.is_empty() {
                let _ = self.batched_get(&ancs);
            }
            for anc in ancs {
                if !self.core.perms.check(anc, cred, ACCESS_X) {
                    return Err(FsError::PermissionDenied);
                }
            }
        }
        if self.core.perms.check(path, cred, want) {
            Ok(())
        } else {
            Err(FsError::PermissionDenied)
        }
    }

    /// Parent of an in-region path.
    fn parent_of<'p>(&self, path: &'p str) -> FsResult<&'p str> {
        fspath::parent(path).ok_or_else(|| FsError::InvalidPath(format!("no parent: {path}")))
    }

    /// Parent-existence check for creations (Section III.C). May fall
    /// through to the DFS when the parent exists there but is not cached.
    fn check_parent(&self, path: &str, cred: &Credentials) -> FsResult<()> {
        if !self.core.config.parent_check {
            return Ok(());
        }
        let parent = self.parent_of(path)?;
        if parent == self.core.root || !self.core.contains(parent) {
            // The workspace root was created at launch; parents outside
            // the region belong to the DFS (and `path == region root`
            // creation is handled by launch itself).
            return Ok(());
        }
        if self.parent_memo.lock().as_deref() == Some(parent) {
            return Ok(());
        }
        let cached = match self.cache.try_get(parent) {
            Ok(c) => c,
            Err(CacheError::Unavailable) => {
                // Degraded: verify against the backup copy only.
                self.core.counters.incr("degraded_reads");
                let stat = self.dfs.stat(parent, cred)?;
                if stat.kind != FileKind::Dir {
                    return Err(FsError::NotADirectory);
                }
                *self.parent_memo.lock() = Some(parent.to_string());
                return Ok(());
            }
        };
        match cached {
            Some((meta, _)) if meta.removed => Err(FsError::NotFound),
            Some((meta, _)) if meta.kind != FileKind::Dir => Err(FsError::NotADirectory),
            Some(_) => {
                *self.parent_memo.lock() = Some(parent.to_string());
                Ok(())
            }
            None => {
                // Sync check on the DFS; cache the result on success.
                let stat = self.dfs.stat(parent, cred)?;
                if stat.kind != FileKind::Dir {
                    return Err(FsError::NotADirectory);
                }
                self.warm_cache(parent, &CachedMeta::from_stat(&stat));
                *self.parent_memo.lock() = Some(parent.to_string());
                Ok(())
            }
        }
    }

    /// Best-effort cache populate from a DFS-loaded record; counts the
    /// key as rewarmed while the region is recovering from an outage.
    fn warm_cache(&self, path: &str, meta: &CachedMeta) {
        if self.cache.try_put(path, meta).is_ok()
            && self.core.degraded.mode() == DegradedMode::Rewarming
        {
            self.core.counters.incr("rewarm_keys");
        }
    }

    /// Load an uncached in-region entry from the DFS into the cache
    /// (getattr-miss path, Section III.D-1).
    fn load_from_dfs(&self, path: &str, cred: &Credentials) -> FsResult<CachedMeta> {
        // An acknowledged unlink may still sit in the commit queue while
        // the backup copy keeps the file. Resurrecting the record from
        // that stale view would drop the pending removal's tombstone and
        // let a second unlink of the same incarnation through.
        if self.core.unlink_pending(path) {
            return Err(FsError::NotFound);
        }
        let stat = self.dfs.stat(path, cred)?;
        let meta = CachedMeta::from_stat(&stat);
        self.warm_cache(path, &meta);
        Ok(meta)
    }

    /// Get the cached record, falling back to a sync DFS load. While
    /// degraded, reads are served straight from the backup copy.
    fn get_or_load(&self, path: &str, cred: &Credentials) -> FsResult<CachedMeta> {
        match self.cache.try_get(path) {
            Ok(Some((meta, _))) => Ok(meta),
            Ok(None) => self.load_from_dfs(path, cred),
            Err(CacheError::Unavailable) => {
                if self.core.unlink_pending(path) {
                    return Err(FsError::NotFound);
                }
                self.core.counters.incr("degraded_reads");
                Ok(CachedMeta::from_stat(&self.dfs.stat(path, cred)?))
            }
        }
    }

    /// Batched cache fetch with read-path accounting. With batching
    /// disabled (the unbatched baseline) this degrades to one charged
    /// lookup per path.
    fn batched_get_on(
        &self,
        cache: &MetaCache,
        paths: &[&str],
    ) -> Result<Vec<Option<(CachedMeta, u64)>>, CacheError> {
        if !self.core.config.read_batching {
            return paths.iter().map(|p| cache.try_get(p)).collect(); // lint:allow-per-key-get
        }
        if paths.is_empty() {
            return Ok(Vec::new());
        }
        let cluster = cache.kv().cluster();
        let mut nodes: Vec<NodeId> = Vec::new();
        for p in paths {
            // lint: allow(stale-owner, accounting only — the grouping feeds read_rtts_saved; the authoritative per-key routing happens inside try_multi_get under the cluster's route lock)
            let n = cluster.shard_node(p.as_bytes());
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
        self.core.counters.incr("batched_reads");
        self.core.counters.add("batched_read_keys", paths.len() as u64);
        self.core.counters.add("read_rtts_saved", (paths.len() - nodes.len()) as u64);
        cache.try_multi_get(paths)
    }

    /// [`Self::batched_get_on`] against this client's own region cache.
    fn batched_get(&self, paths: &[&str]) -> Result<Vec<Option<(CachedMeta, u64)>>, CacheError> {
        self.batched_get_on(&self.cache, paths)
    }

    fn create_kind(
        &self,
        path: &str,
        cred: &Credentials,
        mode: u16,
        kind: FileKind,
    ) -> FsResult<()> {
        self.charge_overhead();
        self.check_perm(self.parent_of(path)?, cred, ACCESS_W | ACCESS_X)?;
        self.check_parent(path, cred)?;
        let perm = Perm::new(mode, cred.uid, cred.gid);
        let fresh = match kind {
            FileKind::Dir => CachedMeta::new_dir(perm, self.core.now()),
            FileKind::File => CachedMeta::new_file(perm, self.core.now()),
        };
        // Set when duplicate detection could not consult the primary copy:
        // the published op carries the flag so `AlreadyExists` at commit
        // time settles as idempotent success instead of a retriable
        // conflict (it may duplicate an acknowledged-but-uncommitted
        // creation this admission check cannot see).
        let mut degraded = false;
        match self.cache.try_add_new(path, &fresh) {
            Ok(Ok(_)) => {}
            Ok(Err(FsError::AlreadyExists)) => {
                // A record exists; re-creation is legal only over a
                // marked-removed one (Section III.D-1).
                match self.cache.try_update(path, |m| {
                    if m.removed {
                        *m = fresh.clone();
                        Ok(())
                    } else {
                        Err(FsError::AlreadyExists)
                    }
                }) {
                    Ok(Ok(Some(_))) => {}
                    Ok(Ok(None)) => {
                        // Record vanished between add and update: retry
                        // once as a fresh add.
                        match self.cache.try_add_new(path, &fresh) {
                            Ok(r) => {
                                r?;
                            }
                            Err(CacheError::Unavailable) => {
                                self.core.counters.incr("degraded_writes");
                                degraded = true;
                            }
                        }
                    }
                    Ok(Err(e)) => return Err(e),
                    Err(CacheError::Unavailable) => {
                        self.core.counters.incr("degraded_writes");
                        degraded = true;
                    }
                }
            }
            Ok(Err(e)) => return Err(e),
            Err(CacheError::Unavailable) => {
                // Degraded creation: the primary copy is unreachable, so
                // duplicate detection falls back to the committed backup
                // view (creations still queued are invisible to it — the
                // documented consistency gap of a degraded window). The
                // op itself still queues through the commit path below.
                self.core.counters.incr("degraded_writes");
                degraded = true;
                match self.dfs.stat(path, cred) {
                    Ok(_) => return Err(FsError::AlreadyExists),
                    Err(FsError::NotFound) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        let op = match kind {
            FileKind::Dir => CommitOp::Mkdir { path: path.to_string(), mode },
            FileKind::File => CommitOp::Create { path: path.to_string(), mode },
        };
        if degraded {
            self.publish_degraded(op)?;
        } else {
            self.publish(op)?;
        }
        self.core.counters.incr(match kind {
            FileKind::Dir => "mkdir",
            FileKind::File => "create",
        });
        eviction::maybe_evict(&self.core, &self.cache);
        Ok(())
    }

    /// Push a barrier marker into every node queue and wait for all
    /// commit processes to reach it. Returns the guard; the caller
    /// performs the dependent op, then completes it.
    fn barrier(&self) -> FsResult<crate::commit::barrier::BarrierGuard<'_>> {
        let guard = self.core.board.start_barrier();
        let epoch = guard.epoch();
        for (n, tx) in self.publishers.iter().enumerate() {
            // Barriers always force publish buffers out: every op queued
            // before the marker must commit before the dependent op runs,
            // including ops still coalescing below the batch threshold.
            self.core.flush_publish_buffer(n, tx)?;
            charge(Station::ClientCpu, self.profile().queue_push);
            // permit_blocking: the barrier slot is held across the marker
            // send by design — workers never take the slot, they only
            // drain the queue, so a full queue always resolves.
            syncguard::permit_blocking(|| {
                tx.send(QueueMsg {
                    id: dfs::OpId::NONE,
                    op: CommitOp::Barrier { epoch },
                    client: self.id.0,
                    epoch,
                    timestamp: self.core.now(),
                    degraded: false,
                })
            })
            .map_err(|_| FsError::Backend("commit queue closed".into()))?;
        }
        guard.wait_workers();
        Ok(guard)
    }

    /// Recursively remove a committed subtree on the DFS (rmdir support;
    /// runs inside a barrier, so the DFS view is complete).
    fn remove_subtree_on_dfs(&self, path: &str, cred: &Credentials) -> FsResult<()> {
        let stat = match self.dfs.stat(path, cred) {
            Ok(s) => s,
            Err(FsError::NotFound) => return Ok(()),
            Err(e) => return Err(e),
        };
        if stat.kind == FileKind::File {
            // lint: allow(commit-path, runs inside a barrier: subtree fully committed, direct backup-copy cleanup)
            return self.dfs.unlink(path, cred);
        }
        for name in self.dfs.readdir(path, cred)? {
            self.remove_subtree_on_dfs(&fspath::join(path, name.as_str()), cred)?;
        }
        // lint: allow(commit-path, runs inside a barrier: subtree fully committed, direct backup-copy cleanup)
        self.dfs.rmdir(path, cred)
    }

    /// Durable staging write (the paper's direct-I/O cache files): data
    /// for files that do not yet exist on the DFS. `charged_len` is the
    /// number of *new* bytes this call moves (incremental appends do not
    /// re-pay for the whole buffer).
    fn stage_data(&self, path: &str, data: Vec<u8>, charged_len: usize) {
        let p = self.profile();
        charge(Station::Network, p.net_rtt_storage);
        let n_data = self.dfs.cluster().config().n_data as u64;
        let mut h = 0xcbf29ce484222325u64;
        for b in path.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
        }
        let mib = (charged_len as u64).div_ceil(1 << 20).max(1);
        charge(Station::DataServer((h % n_data) as u32), mib * p.data_write_per_mib);
        self.core.staging.lock().insert(path.to_string(), data);
    }

    fn inline_fits(&self, path: &str, inline_len: usize) -> bool {
        META_HEADER + path.len() + inline_len <= self.core.config.small_file_threshold
    }

    /// Unlink while the primary copy is unreachable: verify against the
    /// committed backup view, then queue the removal through the normal
    /// commit path. Removals of entries whose creation is still queued
    /// fail `NotFound` here — the degraded window trades namespace
    /// read-your-writes for availability.
    fn degraded_unlink(&self, path: &str, cred: &Credentials) -> FsResult<()> {
        self.core.counters.incr("degraded_writes");
        // The backup still holds a file whose removal is already queued:
        // from the client's point of view that file is gone.
        if self.core.unlink_pending(path) {
            return Err(FsError::NotFound);
        }
        let stat = self.dfs.stat(path, cred)?;
        if stat.kind == FileKind::Dir {
            return Err(FsError::IsADirectory);
        }
        // Same slot release as the healthy path: writes after a
        // re-creation must queue fresh writebacks.
        self.core.pending_writebacks.lock().remove(path);
        let ts = self.core.now();
        self.core.note_unlink_pending(path, ts);
        // The shard is unreachable, so the cached record (if one survives
        // the outage) cannot be tombstoned now — mark it for lazy
        // deletion instead of letting it resurface after the heal.
        self.core.mark_stale_tombstone(path);
        if let Err(e) =
            self.publish_at(CommitOp::Unlink { path: path.to_string() }, None, true, Some(ts))
        {
            self.core.note_unlink_retired(path, ts);
            self.core.clear_stale_tombstone(path);
            return Err(e);
        }
        self.core.counters.incr("unlink");
        Ok(())
    }

    /// Write while the primary copy is unreachable. Committed files take
    /// the data straight to the backup copy; files not yet on the DFS
    /// stage into the durable staging buffer (their queued create lands
    /// first, and fsync/commit flushes the staged bytes).
    fn degraded_write(
        &self,
        path: &str,
        cred: &Credentials,
        offset: u64,
        data: &[u8],
    ) -> FsResult<usize> {
        self.core.counters.incr("degraded_writes");
        if self.core.unlink_pending(path) {
            // The backup copy still holds the file, but its removal is
            // already acknowledged — writing there would land bytes on a
            // doomed incarnation.
            return Err(FsError::NotFound);
        }
        let end = offset as usize + data.len();
        // lint: allow(commit-path, degraded mode: primary copy unreachable, data goes to the backup copy directly)
        match self.dfs.write(path, cred, offset, data) {
            Ok(_) => {
                // If the path's own shard is still up (the window was
                // opened by a different node's crash), keep the primary
                // copy coherent too: a writeback already queued for this
                // path reads the cache at commit time, and a stale inline
                // record would clobber the bytes just written.
                // lint: allow(stale-owner, best-effort liveness probe — a stale owner only skips or attempts the coherence update; the update itself re-routes under the cluster's route lock)
                let shard = self.core.cache_cluster.shard_node(path.as_bytes());
                if self.core.cache_cluster.node_status(shard) == memkv::NodeStatus::Up {
                    let _ = self.cache.update::<()>(path, |m| {
                        if !m.large && !m.removed {
                            if m.inline.len() < end {
                                m.inline.resize(end, 0);
                            }
                            m.inline[offset as usize..end].copy_from_slice(data);
                        }
                        m.size = m.size.max(end as u64);
                        Ok(())
                    });
                }
                Ok(data.len())
            }
            Err(FsError::NotFound) => {
                // Creation still queued: stage like an uncommitted file.
                let mut staging = self.core.staging.lock();
                let buf = staging.entry(path.to_string()).or_default();
                if buf.len() < end {
                    buf.resize(end, 0);
                }
                buf[offset as usize..end].copy_from_slice(data);
                Ok(data.len())
            }
            Err(e) => Err(e),
        }
    }
}

impl FileSystem for PaconClient {
    fn mkdir(&self, path: &str, cred: &Credentials, mode: u16) -> FsResult<()> {
        let merged = self.merged.read();
        match route(&self.core, &merged, path) {
            Route::Own => {
                drop(merged);
                self.create_kind(path, cred, mode, FileKind::Dir)
            }
            Route::Merged(_) => Err(FsError::PermissionDenied), // read-only
            // lint: allow(commit-path, Route::Redirect: paths outside the workspace bypass partial consistency entirely)
            Route::Redirect => self.dfs.mkdir(path, cred, mode),
        }
    }

    fn create(&self, path: &str, cred: &Credentials, mode: u16) -> FsResult<()> {
        let merged = self.merged.read();
        match route(&self.core, &merged, path) {
            Route::Own => {
                drop(merged);
                self.create_kind(path, cred, mode, FileKind::File)
            }
            Route::Merged(_) => Err(FsError::PermissionDenied),
            // lint: allow(commit-path, Route::Redirect: paths outside the workspace bypass partial consistency entirely)
            Route::Redirect => self.dfs.create(path, cred, mode),
        }
    }

    fn stat(&self, path: &str, cred: &Credentials) -> FsResult<FileStat> {
        self.charge_overhead();
        let merged = self.merged.read();
        match route(&self.core, &merged, path) {
            Route::Own => {
                drop(merged);
                if path != self.core.root {
                    self.check_perm(self.parent_of(path)?, cred, ACCESS_X)?;
                }
                match self.cache.try_get(path) {
                    Ok(Some((meta, _))) if meta.removed => Err(FsError::NotFound),
                    Ok(Some((meta, _))) => Ok(meta.to_stat()),
                    Ok(None) => Ok(self.load_from_dfs(path, cred)?.to_stat()),
                    Err(CacheError::Unavailable) => {
                        if self.core.unlink_pending(path) {
                            return Err(FsError::NotFound);
                        }
                        // Degraded read: the committed backup view.
                        self.core.counters.incr("degraded_reads");
                        self.dfs.stat(path, cred)
                    }
                }
            }
            Route::Merged(i) => {
                let m = &merged[i];
                if path != m.handle.root {
                    let parent = fspath::parent(path)
                        .ok_or_else(|| FsError::InvalidPath(path.to_string()))?;
                    if !m.handle.perms.check(parent, cred, ACCESS_X) {
                        return Err(FsError::PermissionDenied);
                    }
                }
                match m.cache.get(path) {
                    Some((meta, _)) if meta.removed => Err(FsError::NotFound),
                    Some((meta, _)) => Ok(meta.to_stat()),
                    // Read-only: fall back to the DFS without populating
                    // the foreign cache.
                    None => self.dfs.stat(path, cred),
                }
            }
            Route::Redirect => self.dfs.stat(path, cred),
        }
    }

    fn stat_many(&self, paths: &[String], cred: &Credentials) -> Vec<FsResult<FileStat>> {
        if !self.core.config.read_batching {
            // Unbatched baseline: a full stat round trip per path.
            return paths.iter().map(|p| self.stat(p, cred)).collect();
        }
        self.charge_overhead();
        let mut own: Vec<usize> = Vec::new();
        let mut other: Vec<usize> = Vec::new();
        {
            let merged = self.merged.read();
            for (i, p) in paths.iter().enumerate() {
                match route(&self.core, &merged, p) {
                    Route::Own => own.push(i),
                    // Merged and redirected paths keep their per-path
                    // handling; batching targets the own-region cache.
                    Route::Merged(_) | Route::Redirect => other.push(i),
                }
            }
        }
        let mut out: Vec<FsResult<FileStat>> =
            (0..paths.len()).map(|_| Err(FsError::NotFound)).collect();
        for i in other {
            out[i] = self.stat(&paths[i], cred);
        }
        // Permission checks are local table matches; do them up front,
        // then fetch every remaining record in one batched call.
        let mut lookup: Vec<usize> = Vec::new();
        for &i in &own {
            let p = paths[i].as_str();
            let allowed = if p == self.core.root {
                Ok(())
            } else {
                self.parent_of(p).and_then(|par| self.check_perm(par, cred, ACCESS_X))
            };
            match allowed {
                Ok(()) => lookup.push(i),
                Err(e) => out[i] = Err(e),
            }
        }
        let keys: Vec<&str> = lookup.iter().map(|&i| paths[i].as_str()).collect();
        let metas = match self.batched_get(&keys) {
            Ok(m) => m,
            Err(CacheError::Unavailable) => {
                // Degraded: the whole batch falls through to per-path
                // stats on the backup copy.
                self.core.counters.add("degraded_reads", keys.len() as u64);
                for &i in &lookup {
                    out[i] = self.dfs.stat(&paths[i], cred);
                }
                return out;
            }
        };
        for (&i, meta) in lookup.iter().zip(metas) {
            out[i] = match meta {
                Some((m, _)) if m.removed => Err(FsError::NotFound),
                Some((m, _)) => Ok(m.to_stat()),
                // Miss: sync DFS load that also populates the cache
                // (getattr-miss path) — an unavoidable per-path trip.
                None => self.load_from_dfs(&paths[i], cred).map(|m| m.to_stat()),
            };
        }
        out
    }

    fn unlink(&self, path: &str, cred: &Credentials) -> FsResult<()> {
        self.charge_overhead();
        let merged = self.merged.read();
        match route(&self.core, &merged, path) {
            Route::Own => {
                drop(merged);
                self.check_perm(self.parent_of(path)?, cred, ACCESS_W | ACCESS_X)?;
                match self.cache.try_get(path) {
                    Ok(Some(_)) => {}
                    Ok(None) => {
                        // rm of an uncached entry: verify against the DFS
                        // and pull the record in, mirroring the
                        // getattr-miss path.
                        self.load_from_dfs(path, cred)?;
                    }
                    Err(CacheError::Unavailable) => {
                        return self.degraded_unlink(path, cred);
                    }
                }
                let updated = match self.cache.try_update(path, |m| {
                    if m.removed {
                        return Err(FsError::NotFound);
                    }
                    if m.kind == FileKind::Dir {
                        return Err(FsError::IsADirectory);
                    }
                    m.removed = true;
                    Ok(())
                }) {
                    Ok(r) => r?,
                    Err(CacheError::Unavailable) => {
                        return self.degraded_unlink(path, cred);
                    }
                };
                if updated.is_none() {
                    return Err(FsError::NotFound);
                }
                // Release the writeback-coalescing slot: a WriteInline
                // queued before this unlink must not absorb writes made
                // after a re-creation (the worker would apply it ahead of
                // the queued unlink+create and the data would be lost).
                self.core.pending_writebacks.lock().remove(path);
                if self.core.config.synchronous_commit {
                    // Synchronous ablation: the commit settles before
                    // publish returns, so there is no pending window.
                    self.publish(CommitOp::Unlink { path: path.to_string() })?;
                } else {
                    // Mark the removal pending *before* publishing: once
                    // the worker can see the message it may settle it at
                    // any time, and retiring an unmarked unlink would
                    // leak the count.
                    let ts = self.core.now();
                    self.core.note_unlink_pending(path, ts);
                    if let Err(e) = self.publish_at(
                        CommitOp::Unlink { path: path.to_string() },
                        None,
                        false,
                        Some(ts),
                    ) {
                        self.core.note_unlink_retired(path, ts);
                        return Err(e);
                    }
                }
                self.core.counters.incr("unlink");
                Ok(())
            }
            Route::Merged(_) => Err(FsError::PermissionDenied),
            // lint: allow(commit-path, Route::Redirect: paths outside the workspace bypass partial consistency entirely)
            Route::Redirect => self.dfs.unlink(path, cred),
        }
    }

    fn rmdir(&self, path: &str, cred: &Credentials) -> FsResult<()> {
        self.charge_overhead();
        let merged = self.merged.read();
        match route(&self.core, &merged, path) {
            Route::Own => {
                drop(merged);
                if path == self.core.root {
                    return Err(FsError::InvalidArgument(
                        "cannot remove the consistent region's workspace root".into(),
                    ));
                }
                self.check_perm(self.parent_of(path)?, cred, ACCESS_W | ACCESS_X)?;
                // Existence/kind check (cache first, DFS on miss).
                let meta = self.get_or_load(path, cred)?;
                if meta.removed {
                    return Err(FsError::NotFound);
                }
                if meta.kind != FileKind::Dir {
                    return Err(FsError::NotADirectory);
                }
                // Barrier commit (sync, Section III.E-2).
                let guard = self.barrier()?;
                let epoch = guard.epoch();
                self.core.removed_dirs.write().push((path.to_string(), epoch));
                {
                    let mut memo = self.parent_memo.lock();
                    if memo.as_deref().map(|m| fspath::is_same_or_ancestor(path, m)).unwrap_or(false)
                    {
                        *memo = None;
                    }
                }
                // Clean the primary copy: the target and everything under
                // it (recursive removal, Section III.D-1).
                let keys = self.core.cache_cluster.keys_with_prefix(path.as_bytes());
                for key in keys {
                    if let Ok(k) = std::str::from_utf8(&key) {
                        if fspath::is_same_or_ancestor(path, k) {
                            // Best-effort: a crashed shard's records are
                            // wiped anyway; removed_dirs epochs guard any
                            // survivors from stale resurrection.
                            let _ = self.cache.try_delete(k);
                        }
                    }
                }
                {
                    let mut staging = self.core.staging.lock();
                    staging.retain(|k, _| !fspath::is_same_or_ancestor(path, k));
                }
                {
                    // Same rationale as unlink: re-creations after the
                    // rmdir must queue fresh writebacks.
                    let mut pending = self.core.pending_writebacks.lock();
                    pending.retain(|k| !fspath::is_same_or_ancestor(path, k));
                }
                // Backup copy: everything earlier is committed, so the
                // DFS subtree is complete; remove it synchronously.
                let res = self.remove_subtree_on_dfs(path, cred);
                guard.complete();
                self.core.counters.incr("rmdir");
                res
            }
            Route::Merged(_) => Err(FsError::PermissionDenied),
            // lint: allow(commit-path, Route::Redirect: paths outside the workspace bypass partial consistency entirely)
            Route::Redirect => self.dfs.rmdir(path, cred),
        }
    }

    fn readdir(&self, path: &str, cred: &Credentials) -> FsResult<Vec<String>> {
        self.charge_overhead();
        let merged = self.merged.read();
        match route(&self.core, &merged, path) {
            Route::Own => {
                drop(merged);
                self.check_perm(path, cred, ACCESS_R)?;
                // Barrier, then list on the DFS — avoids a full cache
                // table scan (Section III.D-1).
                let guard = self.barrier()?;
                let res = self.dfs.readdir(path, cred);
                guard.complete();
                self.core.counters.incr("readdir");
                res
            }
            Route::Merged(i) => {
                let m = &merged[i];
                if !m.handle.perms.check(path, cred, ACCESS_R) {
                    return Err(FsError::PermissionDenied);
                }
                // Read-only merged access cannot trigger a foreign
                // barrier; serve the committed view from the DFS.
                self.dfs.readdir(path, cred)
            }
            Route::Redirect => self.dfs.readdir(path, cred),
        }
    }

    fn readdir_plus(
        &self,
        path: &str,
        cred: &Credentials,
    ) -> FsResult<Vec<(String, FileStat)>> {
        self.charge_overhead();
        let merged = self.merged.read();
        match route(&self.core, &merged, path) {
            Route::Own => {
                drop(merged);
                self.check_perm(path, cred, ACCESS_R)?;
                // Barrier, then list on the DFS, exactly as `readdir`...
                let guard = self.barrier()?;
                let names = self.dfs.readdir(path, cred);
                guard.complete();
                self.core.counters.incr("readdir");
                let names = names?;
                // ...then fetch all child metadata in one batched call
                // instead of a stat round trip per entry.
                let children: Vec<String> =
                    names.iter().map(|n| fspath::join(path, n.as_str())).collect();
                let keys: Vec<&str> = children.iter().map(|p| p.as_str()).collect();
                let metas = match self.batched_get(&keys) {
                    Ok(m) => m,
                    Err(CacheError::Unavailable) => {
                        // Degraded: treat every child as a miss; the
                        // per-entry fallback below stats the backup copy.
                        self.core.counters.add("degraded_reads", keys.len() as u64);
                        vec![None; keys.len()]
                    }
                };
                let mut out = Vec::with_capacity(names.len());
                for ((name, child), meta) in names.into_iter().zip(&children).zip(metas) {
                    match meta {
                        Some((m, _)) if m.removed => {}
                        Some((m, _)) => out.push((name, m.to_stat())),
                        // Miss: the DFS load warms the cache for
                        // subsequent readers.
                        None => match self.load_from_dfs(child, cred) {
                            Ok(m) => out.push((name, m.to_stat())),
                            Err(FsError::NotFound) => {}
                            Err(e) => return Err(e),
                        },
                    }
                }
                Ok(out)
            }
            Route::Merged(i) => {
                let m = &merged[i];
                if !m.handle.perms.check(path, cred, ACCESS_R) {
                    return Err(FsError::PermissionDenied);
                }
                let names = self.dfs.readdir(path, cred)?;
                let children: Vec<String> =
                    names.iter().map(|n| fspath::join(path, n.as_str())).collect();
                let keys: Vec<&str> = children.iter().map(|p| p.as_str()).collect();
                // A faulted foreign cache degrades to all-misses: every
                // entry below falls back to the DFS.
                let metas = self
                    .batched_get_on(&m.cache, &keys)
                    .unwrap_or_else(|_| vec![None; keys.len()]);
                let mut out = Vec::with_capacity(names.len());
                for ((name, child), meta) in names.into_iter().zip(&children).zip(metas) {
                    match meta {
                        Some((mm, _)) if mm.removed => {}
                        Some((mm, _)) => out.push((name, mm.to_stat())),
                        // Read-only: DFS fallback without populating the
                        // foreign cache.
                        None => match self.dfs.stat(child, cred) {
                            Ok(st) => out.push((name, st)),
                            Err(FsError::NotFound) => {}
                            Err(e) => return Err(e),
                        },
                    }
                }
                Ok(out)
            }
            Route::Redirect => self.dfs.readdir_plus(path, cred),
        }
    }

    fn write(&self, path: &str, cred: &Credentials, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.charge_overhead();
        let merged = self.merged.read();
        match route(&self.core, &merged, path) {
            Route::Own => {
                drop(merged);
                self.check_perm(path, cred, ACCESS_W)?;
                match self.cache.try_get(path) {
                    Ok(Some(_)) => {}
                    Ok(None) => {
                        self.load_from_dfs(path, cred)?;
                    }
                    Err(CacheError::Unavailable) => {
                        return self.degraded_write(path, cred, offset, data);
                    }
                }
                enum Outcome {
                    Inline,
                    WentLarge(Vec<u8>),
                    AlreadyLarge { committed: bool },
                }
                let mut outcome = Outcome::Inline;
                let end = offset as usize + data.len();
                let updated = match self.cache.try_update(path, |m| {
                    if m.removed {
                        return Err(FsError::NotFound);
                    }
                    if m.kind == FileKind::Dir {
                        return Err(FsError::IsADirectory);
                    }
                    if m.large {
                        outcome = Outcome::AlreadyLarge { committed: m.committed };
                        return Ok(());
                    }
                    let new_len = end.max(m.inline.len());
                    if self.inline_fits(path, new_len) {
                        if m.inline.len() < end {
                            m.inline.resize(end, 0);
                        }
                        m.inline[offset as usize..end].copy_from_slice(data);
                        m.size = new_len as u64;
                        m.mtime = self.core.now();
                        outcome = Outcome::Inline;
                    } else {
                        // Transition to a large file: data leaves the
                        // cache for the DFS (Section III.D-2).
                        let mut full = std::mem::take(&mut m.inline);
                        if full.len() < end {
                            full.resize(end, 0);
                        }
                        full[offset as usize..end].copy_from_slice(data);
                        m.large = true;
                        m.size = full.len() as u64;
                        m.mtime = self.core.now();
                        outcome = Outcome::WentLarge(full);
                    }
                    Ok(())
                }) {
                    Ok(r) => r?,
                    Err(CacheError::Unavailable) => {
                        return self.degraded_write(path, cred, offset, data);
                    }
                };
                let meta = updated.ok_or(FsError::NotFound)?;
                match outcome {
                    Outcome::Inline => {
                        // Coalesce: the worker reads the freshest primary
                        // copy at commit time, so one queued writeback
                        // covers all earlier writes to this file.
                        let fresh =
                            self.core.pending_writebacks.lock().insert(path.to_string());
                        if fresh {
                            self.publish_with_snapshot(
                                CommitOp::WriteInline { path: path.to_string() },
                                Some(&meta.inline),
                            )?;
                        } else {
                            self.core.counters.incr("writeback_coalesced");
                            if self.core.durable() && !self.core.config.synchronous_commit {
                                // The queued writeback absorbs this write
                                // at commit time, but the log still needs
                                // the bytes: replay rebuilds content from
                                // snapshots, and truncation is blocked
                                // while the absorbing writeback is in
                                // flight, so no extra enqueue accounting.
                                let op = CommitOp::WriteInline { path: path.to_string() };
                                let msg = QueueMsg {
                                    id: self.core.op_identity(&op),
                                    op,
                                    client: self.id.0,
                                    epoch: self.core.board.current_epoch(),
                                    timestamp: self.core.now(),
                                    degraded: false,
                                };
                                self.core.wal_append(
                                    self.node.index(),
                                    &msg,
                                    Some(&meta.inline),
                                )?;
                            }
                        }
                    }
                    Outcome::WentLarge(full) => {
                        if meta.committed {
                            // lint: allow(commit-path, data plane: committed file contents write back directly, only metadata is queued)
                            self.dfs.write(path, cred, 0, &full)?;
                        } else {
                            let n = full.len();
                            self.stage_data(path, full, n);
                        }
                    }
                    Outcome::AlreadyLarge { committed } => {
                        if committed {
                            // lint: allow(commit-path, data plane: committed file contents write back directly, only metadata is queued)
                            self.dfs.write(path, cred, offset, data)?;
                            self.cache.update::<()>(path, |m| {
                                m.size = m.size.max(end as u64);
                                m.mtime = self.core.now();
                                Ok(())
                            }).ok();
                        } else {
                            let mut staging = self.core.staging.lock();
                            let buf = staging.entry(path.to_string()).or_default();
                            if buf.len() < end {
                                buf.resize(end, 0);
                            }
                            buf[offset as usize..end].copy_from_slice(data);
                            let snapshot = buf.clone();
                            drop(staging);
                            self.stage_data(path, snapshot, data.len());
                            self.cache.update::<()>(path, |m| {
                                m.size = m.size.max(end as u64);
                                Ok(())
                            }).ok();
                        }
                    }
                }
                self.core.counters.incr("write");
                eviction::maybe_evict(&self.core, &self.cache);
                Ok(data.len())
            }
            Route::Merged(_) => Err(FsError::PermissionDenied),
            // lint: allow(commit-path, data plane: committed file contents write back directly, only metadata is queued)
            Route::Redirect => self.dfs.write(path, cred, offset, data),
        }
    }

    fn read(&self, path: &str, cred: &Credentials, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        self.charge_overhead();
        let merged = self.merged.read();
        match route(&self.core, &merged, path) {
            Route::Own => {
                drop(merged);
                self.check_perm(path, cred, ACCESS_R)?;
                let meta = self.get_or_load(path, cred)?;
                if meta.removed {
                    return Err(FsError::NotFound);
                }
                if meta.kind == FileKind::Dir {
                    return Err(FsError::IsADirectory);
                }
                if !meta.large {
                    let start = (offset as usize).min(meta.inline.len());
                    let end = (start + len).min(meta.inline.len());
                    return Ok(meta.inline[start..end].to_vec());
                }
                if meta.committed {
                    self.dfs.read(path, cred, offset, len)
                } else {
                    let staging = self.core.staging.lock();
                    let buf = staging.get(path).cloned().unwrap_or_default();
                    let start = (offset as usize).min(buf.len());
                    let end = (start + len).min(buf.len());
                    Ok(buf[start..end].to_vec())
                }
            }
            Route::Merged(i) => {
                let m = &merged[i];
                if !m.handle.perms.check(path, cred, ACCESS_R) {
                    return Err(FsError::PermissionDenied);
                }
                match m.cache.get(path) {
                    Some((meta, _)) if !meta.large && !meta.removed => {
                        let start = (offset as usize).min(meta.inline.len());
                        let end = (start + len).min(meta.inline.len());
                        Ok(meta.inline[start..end].to_vec())
                    }
                    _ => self.dfs.read(path, cred, offset, len),
                }
            }
            Route::Redirect => self.dfs.read(path, cred, offset, len),
        }
    }

    fn fsync(&self, path: &str, cred: &Credentials) -> FsResult<()> {
        self.charge_overhead();
        let merged = self.merged.read();
        match route(&self.core, &merged, path) {
            Route::Own => {
                drop(merged);
                let meta = self.get_or_load(path, cred)?;
                if meta.removed {
                    return Err(FsError::NotFound);
                }
                if meta.kind == FileKind::Dir {
                    return Ok(());
                }
                match (meta.large, meta.committed) {
                    // Small file already on the DFS: write back inline
                    // data synchronously.
                    (false, true) => {
                        // lint: allow(commit-path, fsync writes back committed inline data directly; metadata already queued)
                        self.dfs.write(path, cred, 0, &meta.inline)?;
                        self.dfs.fsync(path, cred)
                    }
                    // Small file not yet created on the DFS: direct-I/O
                    // staging ("cache files", Section III.D-2).
                    (false, false) => {
                        let n = meta.inline.len();
                        self.stage_data(path, meta.inline.clone(), n);
                        Ok(())
                    }
                    (true, true) => self.dfs.fsync(path, cred),
                    // Large & uncommitted: every write already staged
                    // durably.
                    (true, false) => Ok(()),
                }
            }
            Route::Merged(_) => Err(FsError::PermissionDenied),
            Route::Redirect => self.dfs.fsync(path, cred),
        }
    }
}

/// Route a path against the own region and the merged handles without
/// cloning anything.
fn route(core: &RegionCore, merged: &[Merged], path: &str) -> Route {
    if core.contains(path) {
        return Route::Own;
    }
    for (i, m) in merged.iter().enumerate() {
        if fspath::is_same_or_ancestor(&m.handle.root, path) {
            return Route::Merged(i);
        }
    }
    Route::Redirect
}
