//! Cache space management (Section III.F).
//!
//! Metadata is small, so pressure is rare; the policy is deliberately
//! simple. When region-wide cache usage exceeds the configured threshold,
//! pick one top-level entry under the workspace root — round-robin, so
//! consecutive evictions pick different entries and thrashing is
//! dampened — and evict the *committed* metadata of and under it.
//! Uncommitted or removal-marked records are the only primary copy and
//! are never evicted.

use std::sync::atomic::Ordering;

use fsapi::path as fspath;

use crate::cache::MetaCache;
use crate::region::RegionCore;

/// Check the threshold and evict one round-robin-selected top-level entry
/// if usage is above it. Returns the number of evicted records.
pub fn maybe_evict(core: &RegionCore, cache: &MetaCache) -> usize {
    let Some(threshold) = core.config.eviction_threshold else {
        return 0;
    };
    if core.cache_cluster.used_bytes() <= threshold {
        return 0;
    }
    evict_one_entry(core, cache)
}

/// Evict the committed records under the next round-robin top-level entry.
pub fn evict_one_entry(core: &RegionCore, cache: &MetaCache) -> usize {
    let tops = top_level_entries(core);
    if tops.is_empty() {
        return 0;
    }
    let idx = core.evict_cursor.fetch_add(1, Ordering::Relaxed) % tops.len();
    let victim = &tops[idx];
    let keys = core.cache_cluster.keys_with_prefix(victim.as_bytes());
    let paths: Vec<&str> = keys
        .iter()
        .filter_map(|k| std::str::from_utf8(k).ok())
        .filter(|p| fspath::is_same_or_ancestor(victim, p))
        .collect();
    // One batched lookup for the whole subtree instead of a round trip
    // per key; only the backup-copy-backed, not-pending entries may go.
    let metas = cache.multi_get(&paths);
    let mut evicted = 0;
    for (path, meta) in paths.iter().zip(metas) {
        let evictable = meta.map(|(m, _)| m.committed && !m.removed).unwrap_or(false);
        if evictable && cache.delete(path) {
            evicted += 1;
        }
    }
    core.counters.add("evicted", evicted as u64);
    evicted
}

/// Distinct first-level entries under the region root that currently have
/// cached records.
fn top_level_entries(core: &RegionCore) -> Vec<String> {
    let root_prefix = if core.root == "/" {
        "/".to_string()
    } else {
        format!("{}/", core.root)
    };
    let mut tops: Vec<String> = Vec::new();
    for key in core.cache_cluster.keys_with_prefix(root_prefix.as_bytes()) {
        let Ok(path) = std::str::from_utf8(&key) else { continue };
        let rest = &path[root_prefix.len()..];
        let first = rest.split('/').next().unwrap_or("");
        if first.is_empty() {
            continue;
        }
        let top = format!("{root_prefix}{first}");
        if tops.last().map(|t| *t != top).unwrap_or(true) && !tops.contains(&top) {
            tops.push(top);
        }
    }
    tops.sort();
    tops.dedup();
    tops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::MetaCache;
    use crate::config::PaconConfig;
    use crate::region::PaconRegion;
    use fsapi::{Credentials, FileSystem};
    use simnet::{ClientId, LatencyProfile, Topology};
    use std::sync::Arc;

    fn region_with_threshold(t: Option<usize>) -> (Arc<dfs::DfsCluster>, Arc<PaconRegion>) {
        let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
        let cred = Credentials::new(1, 1);
        let mut cfg = PaconConfig::new("/w", Topology::new(1, 1), cred);
        cfg.eviction_threshold = t;
        (Arc::clone(&dfs), PaconRegion::launch_paused(cfg, &dfs).unwrap())
    }

    fn cache_of(region: &PaconRegion) -> MetaCache {
        MetaCache::new(region.core().cache_cluster.client(simnet::NodeId(0)))
    }

    #[test]
    fn no_threshold_means_no_eviction() {
        let (_d, region) = region_with_threshold(None);
        let cred = Credentials::new(1, 1);
        let c = region.client(ClientId(0));
        for i in 0..50 {
            c.create(&format!("/w/f{i:02}"), &cred, 0o644).unwrap();
        }
        assert_eq!(maybe_evict(region.core(), &cache_of(&region)), 0);
        assert_eq!(region.core().cache_cluster.len(), 50);
    }

    #[test]
    fn uncommitted_entries_are_never_evicted() {
        let (_d, region) = region_with_threshold(Some(1));
        let cred = Credentials::new(1, 1);
        let c = region.client(ClientId(0));
        // Workers never run (paused region): everything stays uncommitted.
        for i in 0..20 {
            c.create(&format!("/w/f{i:02}"), &cred, 0o644).unwrap();
        }
        // Way over threshold, but nothing is evictable.
        for _ in 0..30 {
            evict_one_entry(region.core(), &cache_of(&region));
        }
        assert_eq!(region.core().cache_cluster.len(), 20, "primary copies must survive");
        assert_eq!(region.core().counters.get("evicted"), 0);
    }

    #[test]
    fn round_robin_rotates_victims() {
        let (_d, region) = region_with_threshold(Some(1));
        let cred = Credentials::new(1, 1);
        let cache = cache_of(&region);
        // Three committed top-level subtrees, planted directly.
        for d in 0..3 {
            for i in 0..4 {
                let mut m = crate::metadata::CachedMeta::new_file(
                    fsapi::Perm::new(0o644, 1, 1),
                    1,
                );
                m.committed = true;
                cache.put(&format!("/w/d{d}/f{i}"), &m);
            }
        }
        assert_eq!(region.core().cache_cluster.len(), 12);
        // Each eviction round removes exactly one subtree, rotating.
        let e1 = evict_one_entry(region.core(), &cache);
        assert_eq!(e1, 4);
        assert_eq!(region.core().cache_cluster.len(), 8);
        let e2 = evict_one_entry(region.core(), &cache);
        assert_eq!(e2, 4);
        let e3 = evict_one_entry(region.core(), &cache);
        assert_eq!(e3, 4);
        assert_eq!(region.core().cache_cluster.len(), 0);
        assert_eq!(region.core().counters.get("evicted"), 12);
        let _ = cred;
    }

    #[test]
    fn sibling_prefixes_are_not_confused() {
        let (_d, region) = region_with_threshold(Some(1));
        let cache = cache_of(&region);
        let mut m = crate::metadata::CachedMeta::new_file(fsapi::Perm::new(0o644, 1, 1), 1);
        m.committed = true;
        cache.put("/w/a", &m);
        cache.put("/w/ab", &m); // shares the byte prefix of "/w/a"
        let tops = super::top_level_entries(region.core());
        assert_eq!(tops, vec!["/w/a".to_string(), "/w/ab".to_string()]);
        // Evicting "/w/a" must not take "/w/ab" with it.
        region.core().evict_cursor.store(0, std::sync::atomic::Ordering::Relaxed);
        let n = evict_one_entry(region.core(), &cache);
        assert_eq!(n, 1);
        assert!(cache.get("/w/ab").is_some());
    }
}
