//! The distributed metadata cache facade.
//!
//! Thin layer over a [`memkv::KvClient`]: full paths as keys,
//! [`CachedMeta`] records as values, and the lock-free CAS-retry update
//! loop of Section III.D-3 ("when multiple write operations conflict ...
//! Pacon will re-execute it until the update is successful").
//!
//! Two surfaces coexist:
//!
//! * the original **infallible** methods (`get`, `put`, …) assume a
//!   healthy cluster and panic if a request lands on a crashed node —
//!   appropriate for tests and for callers that run only while healthy;
//! * the **fault-aware** `try_*` methods return [`CacheError`] instead.
//!   On a [`MetaCache`] built with [`MetaCache::with_faults`], every
//!   `try_*` RPC is wrapped in a guarded retry loop: bounded attempts
//!   with deterministic jittered exponential backoff (virtual-clock
//!   sleeps, see [`RetryPolicy`]), and on exhaustion the *region* enters
//!   degraded mode — subsequent calls fail fast, gated by a rate-limited
//!   recovery probe ([`crate::degraded`]).

use std::sync::Arc;

use fsapi::{FsError, FsResult};
use memkv::{CasOutcome, KvClient, KvError};

use crate::degraded::Mode;
use crate::metadata::CachedMeta;
use crate::region::RegionCore;
use crate::retry::{splitmix64, RetryPolicy};

/// Give up a CAS loop after this many conflicts; reaching it means a
/// livelock-grade pathology rather than normal contention.
const MAX_CAS_ATTEMPTS: u32 = 1_000;

/// A fault-aware cache RPC gave up: the owning node stayed down through
/// the whole retry budget (or the region is degraded and the probe is
/// not due). The caller falls back to the DFS backup copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheError {
    Unavailable,
}

/// Per-client handle onto the region's distributed metadata cache.
#[derive(Clone)]
pub struct MetaCache {
    kv: KvClient,
    /// Fault plane: retry policy, degraded-mode state, counters and the
    /// virtual clock all live on the region core. `None` = bare cache
    /// (workers, merged regions, unit tests): `try_*` makes exactly one
    /// attempt and never retries or trips degraded mode.
    fault: Option<Arc<RegionCore>>,
}

impl MetaCache {
    pub fn new(kv: KvClient) -> Self {
        Self { kv, fault: None }
    }

    /// Fault-aware handle: `try_*` RPCs retry with backoff against
    /// `core`'s policy and drive its degraded-mode state machine.
    pub fn with_faults(kv: KvClient, core: Arc<RegionCore>) -> Self {
        Self { kv, fault: Some(core) }
    }

    /// Run one cache RPC under the fault guard. Healthy path: attempt,
    /// and on `NodeDown` sleep (virtual clock) and retry until the
    /// policy's budget/deadline runs out, then flip the region to
    /// Degraded. Degraded path: fail fast unless the recovery probe is
    /// due; a successful probe starts Rewarming.
    fn guarded<T>(&self, f: impl Fn(&KvClient) -> Result<T, KvError>) -> Result<T, CacheError> {
        let Some(core) = &self.fault else {
            return f(&self.kv).map_err(|_| CacheError::Unavailable);
        };
        let policy = RetryPolicy::from_config(&core.config);
        let probe_interval = policy.deadline_ns;
        if core.degraded.mode() == Mode::Degraded {
            if !core.degraded.probe_due(core.sim_ns(), probe_interval) {
                return Err(CacheError::Unavailable);
            }
            core.counters.incr("recovery_probes");
            return match f(&self.kv) {
                Ok(v) => {
                    core.degraded.begin_rewarm();
                    core.degraded.note_success(core.sim_ns());
                    Ok(v)
                }
                // NodeDown: still dark. WrongEpoch: the cluster answered
                // but this probe's routing view is stale — let the next
                // probe run with a refreshed epoch rather than declaring
                // recovery on a fenced-off write.
                Err(KvError::NodeDown(_) | KvError::WrongEpoch { .. }) => {
                    Err(CacheError::Unavailable)
                }
            };
        }
        // Deterministic per-call jitter seed: the logical clock tick is
        // unique per call and reproducible under deterministic driving.
        let seed = splitmix64(core.now());
        let mut slept = 0u64;
        let mut attempt = 0u32;
        loop {
            match f(&self.kv) {
                Ok(v) => {
                    if core.degraded.note_success(core.sim_ns()) {
                        core.counters.incr("degraded_recoveries");
                    }
                    return Ok(v);
                }
                Err(e) => {
                    match policy.next_backoff(attempt, slept, seed) {
                        Some(delay) => {
                            match e {
                                KvError::NodeDown(_) => core.counters.incr("rpc_retries"),
                                // A fenced write raced a membership
                                // change; the re-run closure reads a
                                // fresh epoch. Cannot repeat without
                                // another reshard, but it shares the
                                // backoff budget as a churn bound.
                                KvError::WrongEpoch { .. } => {
                                    core.counters.incr("wrong_epoch_retries")
                                }
                            }
                            slept += delay;
                            core.advance(delay);
                            attempt += 1;
                        }
                        None => {
                            core.degraded.enter_degraded(core.sim_ns(), probe_interval);
                            core.counters.incr("degraded_entered");
                            return Err(CacheError::Unavailable);
                        }
                    }
                }
            }
        }
    }

    /// Fault-aware [`Self::get`].
    pub fn try_get(&self, path: &str) -> Result<Option<(CachedMeta, u64)>, CacheError> {
        let hit = self
            .guarded(|kv| kv.try_get(path.as_bytes()))?
            .and_then(|(bytes, ver)| CachedMeta::decode(&bytes).map(|m| (m, ver)));
        if hit.is_some() && self.purge_if_stale(path) {
            return Ok(None);
        }
        Ok(hit)
    }

    /// Lazy cleanup behind a degraded-mode unlink: the removal committed
    /// against the backup while this record's shard was unreachable, so a
    /// record that survived the outage describes a dead incarnation.
    /// Delete it and report the hit as a miss. Returns true when the hit
    /// must be suppressed.
    fn purge_if_stale(&self, path: &str) -> bool {
        let Some(core) = &self.fault else {
            return false;
        };
        if !core.is_stale_tombstone(path) {
            return false;
        }
        if self.guarded(|kv| kv.try_delete(path.as_bytes())).is_ok() {
            core.clear_stale_tombstone(path);
        }
        true
    }

    /// Fault-aware [`Self::multi_get`], fault-isolated per node group: a
    /// node crashing mid-batch no longer discards the results already
    /// fetched from healthy groups
    /// (`memkv::KvClient::try_multi_gets_partial`). Keys owned by a down
    /// node are salvaged per-key through the guarded retry envelope;
    /// keys that stay unreachable are reported as misses — the caller's
    /// per-path DFS fallback *is* the degraded read, counted here.
    pub fn try_multi_get(
        &self,
        paths: &[&str],
    ) -> Result<Vec<Option<(CachedMeta, u64)>>, CacheError> {
        let keys: Vec<&[u8]> = paths.iter().map(|p| p.as_bytes()).collect();
        let partial = self.guarded(|kv| Ok(kv.try_multi_gets_partial(&keys)))?;
        let mut failed = vec![false; paths.len()];
        for (_, idxs) in &partial.failed {
            for &i in idxs {
                failed[i] = true;
            }
        }
        let mut out = Vec::with_capacity(paths.len());
        for (i, (r, path)) in partial.results.into_iter().zip(paths).enumerate() {
            if failed[i] {
                match self.try_get(path) {
                    Ok(hit) => out.push(hit),
                    Err(CacheError::Unavailable) => {
                        if let Some(core) = &self.fault {
                            core.counters.incr("degraded_reads");
                        }
                        out.push(None);
                    }
                }
                continue;
            }
            let hit = r.and_then(|(bytes, ver)| CachedMeta::decode(&bytes).map(|m| (m, ver)));
            out.push(if hit.is_some() && self.purge_if_stale(path) { None } else { hit });
        }
        Ok(out)
    }

    /// Fault-aware [`Self::put`].
    pub fn try_put(&self, path: &str, meta: &CachedMeta) -> Result<u64, CacheError> {
        let bytes = meta.encode();
        let ver = self.guarded(|kv| kv.try_set(path.as_bytes(), &bytes))?;
        // A fresh authoritative record supersedes any stale survivor.
        if let Some(core) = &self.fault {
            core.clear_stale_tombstone(path);
        }
        Ok(ver)
    }

    /// Fault-aware [`Self::add_new`]. Outer error = cache unreachable;
    /// inner error = the path is already cached.
    pub fn try_add_new(
        &self,
        path: &str,
        meta: &CachedMeta,
    ) -> Result<FsResult<u64>, CacheError> {
        let bytes = meta.encode();
        let added = self.guarded(|kv| kv.try_add(path.as_bytes(), &bytes))?;
        if added.is_some() {
            if let Some(core) = &self.fault {
                core.clear_stale_tombstone(path);
            }
        }
        Ok(added.ok_or(FsError::AlreadyExists))
    }

    /// Fault-aware [`Self::update`]: the CAS-retry loop with every get
    /// and CAS individually guarded. Outer error = cache unreachable
    /// mid-loop; inner is the caller's abort.
    pub fn try_update<E>(
        &self,
        path: &str,
        mut f: impl FnMut(&mut CachedMeta) -> Result<(), E>,
    ) -> Result<Result<Option<CachedMeta>, E>, CacheError> {
        for _ in 0..MAX_CAS_ATTEMPTS {
            // Epoch before the get: the fence below is then conservative —
            // any membership change since this read (a reshard could have
            // moved the key mid-loop) rejects the CAS, never the reverse.
            let seen_epoch = self.kv.cluster().ring_epoch();
            let Some((mut meta, version)) = self.try_get(path)? else {
                return Ok(Ok(None));
            };
            if let Err(e) = f(&mut meta) {
                return Ok(Err(e));
            }
            let bytes = meta.encode();
            let outcome = self.guarded(|kv| {
                match kv.try_cas_fenced(path.as_bytes(), version, &bytes, seen_epoch) {
                    // Stale routing view: surface as a version conflict so
                    // this loop re-reads value, version *and* epoch.
                    // (Retrying inside `guarded` would re-send the same
                    // stale epoch forever.)
                    Err(KvError::WrongEpoch { .. }) => {
                        if let Some(core) = &self.fault {
                            core.counters.incr("wrong_epoch_retries");
                        }
                        Ok(CasOutcome::Conflict { current_version: version })
                    }
                    other => other,
                }
            })?;
            match outcome {
                CasOutcome::Stored { .. } => return Ok(Ok(Some(meta))),
                CasOutcome::Conflict { .. } => continue,
                CasOutcome::NotFound => return Ok(Ok(None)),
            }
        }
        panic!("cache CAS loop exceeded {MAX_CAS_ATTEMPTS} attempts on {path}");
    }

    /// Fault-aware [`Self::delete`].
    pub fn try_delete(&self, path: &str) -> Result<bool, CacheError> {
        self.guarded(|kv| kv.try_delete(path.as_bytes()))
    }

    /// Fetch a record and its CAS version.
    pub fn get(&self, path: &str) -> Option<(CachedMeta, u64)> {
        self.kv
            .get(path.as_bytes())
            .and_then(|(bytes, ver)| CachedMeta::decode(&bytes).map(|m| (m, ver)))
    }

    /// Batched fetch: one multi-get against the KV cluster — one round
    /// trip per shard node instead of one per path. Results are in input
    /// order; a missing (or undecodable) record yields `None`.
    pub fn multi_get(&self, paths: &[&str]) -> Vec<Option<(CachedMeta, u64)>> {
        let keys: Vec<&[u8]> = paths.iter().map(|p| p.as_bytes()).collect();
        self.kv
            .multi_gets(&keys)
            .into_iter()
            .map(|r| r.and_then(|(bytes, ver)| CachedMeta::decode(&bytes).map(|m| (m, ver))))
            .collect()
    }

    /// Insert a brand-new record; fails if the path is already cached.
    pub fn add_new(&self, path: &str, meta: &CachedMeta) -> FsResult<u64> {
        self.kv
            .add(path.as_bytes(), &meta.encode())
            .ok_or(FsError::AlreadyExists)
    }

    /// Unconditional store (used when loading DFS entries into the cache;
    /// last writer wins is fine because both writers hold the same
    /// DFS-derived truth).
    pub fn put(&self, path: &str, meta: &CachedMeta) -> u64 {
        self.kv.set(path.as_bytes(), &meta.encode())
    }

    /// CAS-retry update loop. `f` is re-run on every conflict against the
    /// freshest record; returning `Err` aborts. Returns the final record.
    pub fn update<E>(
        &self,
        path: &str,
        mut f: impl FnMut(&mut CachedMeta) -> Result<(), E>,
    ) -> Result<Option<CachedMeta>, E> {
        for _ in 0..MAX_CAS_ATTEMPTS {
            let Some((mut meta, version)) = self.get(path) else {
                return Ok(None);
            };
            f(&mut meta)?;
            match self.kv.cas(path.as_bytes(), version, &meta.encode()) {
                CasOutcome::Stored { .. } => return Ok(Some(meta)),
                CasOutcome::Conflict { .. } => continue,
                CasOutcome::NotFound => return Ok(None),
            }
        }
        panic!("cache CAS loop exceeded {MAX_CAS_ATTEMPTS} attempts on {path}");
    }

    /// Delete a record; true if it existed.
    pub fn delete(&self, path: &str) -> bool {
        self.kv.delete(path.as_bytes())
    }

    /// The underlying KV client (for cost-sensitive callers that need the
    /// cluster, e.g. eviction).
    pub fn kv(&self) -> &KvClient {
        &self.kv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsapi::Perm;
    use memkv::KvCluster;
    use simnet::{LatencyProfile, NodeId, Topology};
    use std::sync::Arc;

    fn cache() -> MetaCache {
        let cluster = KvCluster::new(Topology::new(2, 1), Arc::new(LatencyProfile::zero()));
        MetaCache::new(cluster.client(NodeId(0)))
    }

    fn meta() -> CachedMeta {
        CachedMeta::new_file(Perm::new(0o644, 1, 1), 1)
    }

    #[test]
    fn add_then_get_then_duplicate_fails() {
        let c = cache();
        c.add_new("/w/f", &meta()).unwrap();
        let (m, _) = c.get("/w/f").unwrap();
        assert_eq!(m, meta());
        assert_eq!(c.add_new("/w/f", &meta()), Err(FsError::AlreadyExists));
    }

    #[test]
    fn multi_get_matches_sequential_gets() {
        let c = cache();
        c.add_new("/w/a", &meta()).unwrap();
        c.add_new("/w/b", &meta()).unwrap();
        let paths = ["/w/a", "/w/missing", "/w/b"];
        let batched = c.multi_get(&paths);
        for (p, got) in paths.iter().zip(&batched) {
            assert_eq!(got, &c.get(p));
        }
        assert!(batched[1].is_none());
    }

    #[test]
    fn update_applies_and_returns_final() {
        let c = cache();
        c.add_new("/w/f", &meta()).unwrap();
        let out = c
            .update::<()>("/w/f", |m| {
                m.size = 77;
                m.committed = true;
                Ok(())
            })
            .unwrap()
            .unwrap();
        assert_eq!(out.size, 77);
        let (m, _) = c.get("/w/f").unwrap();
        assert!(m.committed);
    }

    #[test]
    fn update_missing_returns_none() {
        let c = cache();
        assert_eq!(c.update::<()>("/nope", |_| Ok(())).unwrap(), None);
    }

    #[test]
    fn update_error_aborts() {
        let c = cache();
        c.add_new("/w/f", &meta()).unwrap();
        let res: Result<_, &str> = c.update("/w/f", |_| Err("nope"));
        assert_eq!(res, Err("nope"));
        let (m, _) = c.get("/w/f").unwrap();
        assert_eq!(m.size, 0, "aborted update must not mutate");
    }

    #[test]
    fn concurrent_updates_all_land() {
        let cluster = KvCluster::new(Topology::new(1, 4), Arc::new(LatencyProfile::zero()));
        let c0 = MetaCache::new(cluster.client(NodeId(0)));
        c0.add_new("/ctr", &meta()).unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = MetaCache::new(cluster.client(NodeId(0)));
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    c.update::<()>("/ctr", |m| {
                        m.size += 1;
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c0.get("/ctr").unwrap().0.size, 800);
    }

    /// A fault-aware cache over a real region core (paused — no worker
    /// threads, deterministic single-threaded driving).
    fn faulted() -> (Arc<crate::region::RegionCore>, MetaCache) {
        let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
        let region = crate::PaconRegion::launch_paused(
            crate::PaconConfig::new("/w", Topology::new(2, 1), fsapi::Credentials::new(1, 1)),
            &dfs,
        )
        .unwrap();
        let core = Arc::clone(region.core());
        let cache =
            MetaCache::with_faults(core.cache_cluster.client(NodeId(0)), Arc::clone(&core));
        (core, cache)
    }

    #[test]
    fn guarded_rpc_retries_then_degrades_probes_and_rewarms() {
        let (core, c) = faulted();
        c.add_new("/w/f", &meta()).unwrap();
        let victim = core.cache_cluster.shard_node(b"/w/f");
        core.cache_cluster.crash(victim);

        // Healthy → bounded retries with backoff → Degraded.
        assert_eq!(c.try_get("/w/f"), Err(CacheError::Unavailable));
        let policy = RetryPolicy::from_config(&core.config);
        assert_eq!(core.counters.get("rpc_retries") as u32, policy.budget);
        assert_eq!(core.degraded.mode(), Mode::Degraded);
        assert!(core.sim_ns() > 0, "backoff slept on the virtual clock");

        // Degraded: fail fast, no further retries burned.
        let before = core.counters.get("rpc_retries");
        assert_eq!(c.try_get("/w/f"), Err(CacheError::Unavailable));
        assert_eq!(core.counters.get("rpc_retries"), before);

        // Node restarts; the first call past the probe interval probes,
        // reaches the (cold) cache and starts rewarming.
        core.cache_cluster.restart(victim);
        core.advance(policy.deadline_ns);
        assert_eq!(c.try_get("/w/f"), Ok(None), "restart wiped the record");
        assert_eq!(core.degraded.mode(), Mode::Rewarming);
        assert_eq!(core.counters.get("recovery_probes"), 1);

        // A streak of cache successes closes the degraded window.
        for _ in 0..crate::degraded::REWARM_STREAK {
            c.try_get("/w/f").unwrap();
        }
        assert_eq!(core.degraded.mode(), Mode::Healthy);
        assert_eq!(core.counters.get("degraded_recoveries"), 1);
        assert!(core.degraded.window_ns(core.sim_ns()) > 0);
    }

    #[test]
    fn bare_cache_try_surface_fails_fast_without_degraded_state() {
        let cluster = KvCluster::new(Topology::new(2, 1), Arc::new(LatencyProfile::zero()));
        let c = MetaCache::new(cluster.client(NodeId(0)));
        c.add_new("/w/f", &meta()).unwrap();
        cluster.crash(cluster.shard_node(b"/w/f"));
        // No region core: exactly one attempt, mapped to Unavailable.
        assert_eq!(c.try_get("/w/f"), Err(CacheError::Unavailable));
        assert_eq!(c.try_put("/w/f", &meta()), Err(CacheError::Unavailable));
        assert_eq!(c.try_delete("/w/f"), Err(CacheError::Unavailable));
    }
}
