//! The distributed metadata cache facade.
//!
//! Thin layer over a [`memkv::KvClient`]: full paths as keys,
//! [`CachedMeta`] records as values, and the lock-free CAS-retry update
//! loop of Section III.D-3 ("when multiple write operations conflict ...
//! Pacon will re-execute it until the update is successful").

use fsapi::{FsError, FsResult};
use memkv::{CasOutcome, KvClient};

use crate::metadata::CachedMeta;

/// Give up a CAS loop after this many conflicts; reaching it means a
/// livelock-grade pathology rather than normal contention.
const MAX_CAS_ATTEMPTS: u32 = 1_000;

/// Per-client handle onto the region's distributed metadata cache.
#[derive(Clone)]
pub struct MetaCache {
    kv: KvClient,
}

impl MetaCache {
    pub fn new(kv: KvClient) -> Self {
        Self { kv }
    }

    /// Fetch a record and its CAS version.
    pub fn get(&self, path: &str) -> Option<(CachedMeta, u64)> {
        self.kv
            .get(path.as_bytes())
            .and_then(|(bytes, ver)| CachedMeta::decode(&bytes).map(|m| (m, ver)))
    }

    /// Batched fetch: one multi-get against the KV cluster — one round
    /// trip per shard node instead of one per path. Results are in input
    /// order; a missing (or undecodable) record yields `None`.
    pub fn multi_get(&self, paths: &[&str]) -> Vec<Option<(CachedMeta, u64)>> {
        let keys: Vec<&[u8]> = paths.iter().map(|p| p.as_bytes()).collect();
        self.kv
            .multi_gets(&keys)
            .into_iter()
            .map(|r| r.and_then(|(bytes, ver)| CachedMeta::decode(&bytes).map(|m| (m, ver))))
            .collect()
    }

    /// Insert a brand-new record; fails if the path is already cached.
    pub fn add_new(&self, path: &str, meta: &CachedMeta) -> FsResult<u64> {
        self.kv
            .add(path.as_bytes(), &meta.encode())
            .ok_or(FsError::AlreadyExists)
    }

    /// Unconditional store (used when loading DFS entries into the cache;
    /// last writer wins is fine because both writers hold the same
    /// DFS-derived truth).
    pub fn put(&self, path: &str, meta: &CachedMeta) -> u64 {
        self.kv.set(path.as_bytes(), &meta.encode())
    }

    /// CAS-retry update loop. `f` is re-run on every conflict against the
    /// freshest record; returning `Err` aborts. Returns the final record.
    pub fn update<E>(
        &self,
        path: &str,
        mut f: impl FnMut(&mut CachedMeta) -> Result<(), E>,
    ) -> Result<Option<CachedMeta>, E> {
        for _ in 0..MAX_CAS_ATTEMPTS {
            let Some((mut meta, version)) = self.get(path) else {
                return Ok(None);
            };
            f(&mut meta)?;
            match self.kv.cas(path.as_bytes(), version, &meta.encode()) {
                CasOutcome::Stored { .. } => return Ok(Some(meta)),
                CasOutcome::Conflict { .. } => continue,
                CasOutcome::NotFound => return Ok(None),
            }
        }
        panic!("cache CAS loop exceeded {MAX_CAS_ATTEMPTS} attempts on {path}");
    }

    /// Delete a record; true if it existed.
    pub fn delete(&self, path: &str) -> bool {
        self.kv.delete(path.as_bytes())
    }

    /// The underlying KV client (for cost-sensitive callers that need the
    /// cluster, e.g. eviction).
    pub fn kv(&self) -> &KvClient {
        &self.kv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsapi::Perm;
    use memkv::KvCluster;
    use simnet::{LatencyProfile, NodeId, Topology};
    use std::sync::Arc;

    fn cache() -> MetaCache {
        let cluster = KvCluster::new(Topology::new(2, 1), Arc::new(LatencyProfile::zero()));
        MetaCache::new(cluster.client(NodeId(0)))
    }

    fn meta() -> CachedMeta {
        CachedMeta::new_file(Perm::new(0o644, 1, 1), 1)
    }

    #[test]
    fn add_then_get_then_duplicate_fails() {
        let c = cache();
        c.add_new("/w/f", &meta()).unwrap();
        let (m, _) = c.get("/w/f").unwrap();
        assert_eq!(m, meta());
        assert_eq!(c.add_new("/w/f", &meta()), Err(FsError::AlreadyExists));
    }

    #[test]
    fn multi_get_matches_sequential_gets() {
        let c = cache();
        c.add_new("/w/a", &meta()).unwrap();
        c.add_new("/w/b", &meta()).unwrap();
        let paths = ["/w/a", "/w/missing", "/w/b"];
        let batched = c.multi_get(&paths);
        for (p, got) in paths.iter().zip(&batched) {
            assert_eq!(got, &c.get(p));
        }
        assert!(batched[1].is_none());
    }

    #[test]
    fn update_applies_and_returns_final() {
        let c = cache();
        c.add_new("/w/f", &meta()).unwrap();
        let out = c
            .update::<()>("/w/f", |m| {
                m.size = 77;
                m.committed = true;
                Ok(())
            })
            .unwrap()
            .unwrap();
        assert_eq!(out.size, 77);
        let (m, _) = c.get("/w/f").unwrap();
        assert!(m.committed);
    }

    #[test]
    fn update_missing_returns_none() {
        let c = cache();
        assert_eq!(c.update::<()>("/nope", |_| Ok(())).unwrap(), None);
    }

    #[test]
    fn update_error_aborts() {
        let c = cache();
        c.add_new("/w/f", &meta()).unwrap();
        let res: Result<_, &str> = c.update("/w/f", |_| Err("nope"));
        assert_eq!(res, Err("nope"));
        let (m, _) = c.get("/w/f").unwrap();
        assert_eq!(m.size, 0, "aborted update must not mutate");
    }

    #[test]
    fn concurrent_updates_all_land() {
        let cluster = KvCluster::new(Topology::new(1, 4), Arc::new(LatencyProfile::zero()));
        let c0 = MetaCache::new(cluster.client(NodeId(0)));
        c0.add_new("/ctr", &meta()).unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = MetaCache::new(cluster.client(NodeId(0)));
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    c.update::<()>("/ctr", |m| {
                        m.size += 1;
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c0.get("/ctr").unwrap().0.size, 800);
    }
}
