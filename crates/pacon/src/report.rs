//! Region introspection: a point-in-time report of one consistent
//! region's health — cache population and hit rates, commit progress,
//! barrier epoch, staging backlog — for operators, experiments, and
//! tests. `Display` renders a compact multi-line summary.

use std::fmt;

use crate::region::PaconRegion;

/// Snapshot of a region's operational state.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    pub workspace: String,
    pub nodes: u32,
    pub clients: u32,
    /// Records in the distributed cache.
    pub cached_entries: usize,
    /// Bytes across all cache shards.
    pub cache_bytes: usize,
    /// Cache gets / hits since launch.
    pub cache_gets: u64,
    pub cache_hits: u64,
    /// CAS conflicts resolved by retry (Section III.D-3).
    pub cas_conflicts: u64,
    /// Operations enqueued to the commit queues.
    pub ops_enqueued: u64,
    /// Operations fully handled (committed + discarded + dropped).
    pub ops_completed: u64,
    /// Commits applied to the DFS.
    pub committed: u64,
    /// Commits resubmitted at least once (independent-commit retries).
    pub resubmitted: u64,
    /// Creations discarded under removed directories.
    pub discarded: u64,
    /// Group commit: multi-op batch messages flushed into the queues.
    pub batches_flushed: u64,
    /// Operations carried inside those batch messages.
    pub batched_ops: u64,
    /// Ops settled client-side by create×unlink annihilation in the
    /// publish buffer (counts both sides plus absorbed writebacks).
    pub coalesced_cancel: u64,
    /// Duplicate inline writebacks collapsed in the publish buffer.
    pub coalesced_collapse: u64,
    /// Replayed creations recognized as already applied after a lost
    /// reply (idempotent success instead of a burned retry).
    pub idempotent_replays: u64,
    /// Batched reads: client-side multi-get calls issued.
    pub batched_reads: u64,
    /// Keys fetched across those batched reads.
    pub batched_read_keys: u64,
    /// Network round trips avoided by grouping keys per shard node
    /// (keys minus shard-node groups, summed over all batches).
    pub read_rtts_saved: u64,
    /// Value bytes served by reference from the shards (refcount bump on
    /// a shared buffer) instead of being copied per hit.
    pub read_bytes_not_copied: u64,
    /// Completed barrier epochs.
    pub barrier_epoch: u64,
    /// Files staged durably while awaiting their create's commit.
    pub staged_files: usize,
    /// Records evicted by the space-management policy.
    pub evicted: u64,
    /// Durable commit queue: ops journaled into the per-node WALs.
    pub wal_appended: u64,
    /// fsync calls the logs actually issued (≤ appends under group fsync).
    pub wal_fsyncs: u64,
    /// Log truncations after the in-flight window drained.
    pub wal_truncations: u64,
    /// Ops read back from the WALs at launch (this incarnation).
    pub wal_replayed: u64,
    /// Recovered ops applied (including already-applied no-ops).
    pub recovery_applied: u64,
    /// Recovered ops dropped as unsatisfiable (prerequisite never logged).
    pub recovery_skipped: u64,
    /// Buffered-but-unpublished ops discarded by checkpoint rollback.
    pub rollback_dropped_ops: u64,
    /// Confirmed replay identities evicted from the DFS seen-cache (at
    /// launch and after fully-truncating sync barriers).
    pub replay_pruned: u64,
    /// Fault plane: cache RPC retries taken (backoff sleeps on the
    /// virtual clock).
    pub rpc_retries: u64,
    /// Reads served from the DFS backup copy while the region was
    /// degraded.
    pub degraded_reads: u64,
    /// Total virtual ns spent outside Healthy (closed windows plus the
    /// one still open, if any).
    pub degraded_window_ns: u64,
    /// Keys re-populated into the cache from DFS loads during recovery.
    pub rewarm_keys: u64,
    /// Cache-ring epoch: bumped on every membership event (crash,
    /// restart, migration begin/complete/abort). Monotonic.
    pub ring_epoch: u64,
    /// Live reshards started (`begin_join` + `begin_leave`).
    pub reshard_started: u64,
    /// Keys transferred to their new owners by live reshards.
    pub keys_migrated: u64,
    /// Fenced CAS attempts rejected on a stale routing epoch and retried
    /// with a refreshed view.
    pub wrong_epoch_retries: u64,
    /// Join migrations aborted by a crash (plus leave migrations
    /// force-completed, folded in as the other deterministic resolution).
    pub migration_aborts: u64,
}

impl RegionReport {
    /// Cache hit fraction (0 when no gets happened).
    pub fn hit_rate(&self) -> f64 {
        if self.cache_gets == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_gets as f64
        }
    }

    /// Commit backlog: operations accepted but not yet applied.
    pub fn backlog(&self) -> u64 {
        self.ops_enqueued.saturating_sub(self.ops_completed)
    }

    /// Mean keys per batched read (0 when none happened).
    pub fn keys_per_batch(&self) -> f64 {
        if self.batched_reads == 0 {
            0.0
        } else {
            self.batched_read_keys as f64 / self.batched_reads as f64
        }
    }
}

impl fmt::Display for RegionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "region {} ({} nodes, {} clients)",
            self.workspace, self.nodes, self.clients
        )?;
        writeln!(
            f,
            "  cache:  {} entries, {} bytes, hit rate {:.1}%, {} CAS conflicts",
            self.cached_entries,
            self.cache_bytes,
            self.hit_rate() * 100.0,
            self.cas_conflicts
        )?;
        writeln!(
            f,
            "  commit: {}/{} applied ({} resubmissions, {} discarded, backlog {})",
            self.committed,
            self.ops_enqueued,
            self.resubmitted,
            self.discarded,
            self.backlog()
        )?;
        writeln!(
            f,
            "  batch:  {} batches / {} ops, {} cancelled, {} collapsed, {} idempotent replays",
            self.batches_flushed,
            self.batched_ops,
            self.coalesced_cancel,
            self.coalesced_collapse,
            self.idempotent_replays
        )?;
        writeln!(
            f,
            "  reads:  {} batches / {} keys ({:.1}/batch), {} RTTs saved, {} bytes not copied",
            self.batched_reads,
            self.batched_read_keys,
            self.keys_per_batch(),
            self.read_rtts_saved,
            self.read_bytes_not_copied
        )?;
        writeln!(
            f,
            "  state:  barrier epoch {}, {} staged file(s), {} evicted record(s)",
            self.barrier_epoch, self.staged_files, self.evicted
        )?;
        writeln!(
            f,
            "  wal:    {} appended / {} fsyncs / {} truncations, \
             {} replayed ({} applied, {} skipped), {} rollback-dropped, {} pruned",
            self.wal_appended,
            self.wal_fsyncs,
            self.wal_truncations,
            self.wal_replayed,
            self.recovery_applied,
            self.recovery_skipped,
            self.rollback_dropped_ops,
            self.replay_pruned
        )?;
        writeln!(
            f,
            "  fault:  {} rpc retries, {} degraded reads, {} rewarmed keys, \
             degraded window {} ns",
            self.rpc_retries, self.degraded_reads, self.rewarm_keys, self.degraded_window_ns
        )?;
        write!(
            f,
            "  ring:   epoch {}, {} reshards, {} keys migrated, \
             {} wrong-epoch retries, {} aborts",
            self.ring_epoch,
            self.reshard_started,
            self.keys_migrated,
            self.wrong_epoch_retries,
            self.migration_aborts
        )
    }
}

impl PaconRegion {
    /// Collect a point-in-time [`RegionReport`].
    pub fn report(&self) -> RegionReport {
        let core = self.core();
        let kv = core.cache_cluster.stats();
        let reshard = core.cache_cluster.reshard_stats();
        RegionReport {
            workspace: core.root.clone(),
            nodes: core.config.topology.nodes,
            clients: core.config.topology.total_clients(),
            cached_entries: core.cache_cluster.len(),
            cache_bytes: core.cache_cluster.used_bytes(),
            cache_gets: kv.gets,
            cache_hits: kv.hits,
            cas_conflicts: kv.cas_conflicts,
            ops_enqueued: core.enqueued.load(std::sync::atomic::Ordering::Acquire),
            ops_completed: core.completed.load(std::sync::atomic::Ordering::Acquire),
            committed: core.counters.get("committed"),
            resubmitted: core.counters.get("resubmitted"),
            discarded: core.counters.get("discarded_removed_dir")
                + core.counters.get("dropped_retry_budget"),
            batches_flushed: core.counters.get("batches_flushed"),
            batched_ops: core.counters.get("batched_ops"),
            coalesced_cancel: core.counters.get("coalesced_cancel"),
            coalesced_collapse: core.counters.get("coalesced_collapse"),
            idempotent_replays: core.counters.get("idempotent_replays"),
            batched_reads: core.counters.get("batched_reads"),
            batched_read_keys: core.counters.get("batched_read_keys"),
            read_rtts_saved: core.counters.get("read_rtts_saved"),
            read_bytes_not_copied: kv.bytes_referenced,
            barrier_epoch: core.board.current_epoch(),
            staged_files: core.staging.lock().len(),
            evicted: core.counters.get("evicted"),
            wal_appended: core.counters.get("wal_appended"),
            wal_fsyncs: core.counters.get("wal_fsyncs"),
            wal_truncations: core.counters.get("wal_truncations"),
            wal_replayed: core.counters.get("wal_replayed"),
            recovery_applied: core.counters.get("recovery_applied"),
            recovery_skipped: core.counters.get("recovery_skipped"),
            rollback_dropped_ops: core.counters.get("rollback_dropped_ops"),
            replay_pruned: core.counters.get("replay_pruned"),
            rpc_retries: core.counters.get("rpc_retries"),
            degraded_reads: core.counters.get("degraded_reads"),
            degraded_window_ns: core.degraded.window_ns(core.sim_ns()),
            rewarm_keys: core.counters.get("rewarm_keys"),
            ring_epoch: core.cache_cluster.ring_epoch(),
            reshard_started: reshard.reshard_started,
            keys_migrated: reshard.keys_migrated,
            wrong_epoch_retries: core.counters.get("wrong_epoch_retries"),
            migration_aborts: reshard.migration_aborts + reshard.forced_completes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaconConfig;
    use fsapi::{Credentials, FileSystem};
    use simnet::{ClientId, LatencyProfile, Topology};
    use std::sync::Arc;

    #[test]
    fn report_tracks_activity() {
        let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
        let cred = Credentials::new(1, 1);
        let region = PaconRegion::launch(
            PaconConfig::new("/app", Topology::new(2, 2), cred),
            &dfs,
        )
        .unwrap();
        let c = region.client(ClientId(0));
        for i in 0..10 {
            c.create(&format!("/app/f{i}"), &cred, 0o644).unwrap();
        }
        c.stat("/app/f0", &cred).unwrap();
        c.stat("/app/f0", &cred).unwrap();
        region.quiesce();

        let r = region.report();
        assert_eq!(r.workspace, "/app");
        assert_eq!(r.nodes, 2);
        assert_eq!(r.clients, 4);
        assert_eq!(r.cached_entries, 10);
        assert!(r.cache_bytes > 0);
        assert_eq!(r.ops_enqueued, 10);
        assert_eq!(r.committed, 10);
        assert_eq!(r.backlog(), 0);
        assert!(r.hit_rate() > 0.0);

        let text = r.to_string();
        assert!(text.contains("region /app"));
        assert!(text.contains("10/10 applied"));
        region.shutdown().unwrap();
    }

    #[test]
    fn report_tracks_group_commit_counters() {
        let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
        let cred = Credentials::new(1, 1);
        // Paused region: the worker only runs after all 40 creates are
        // buffered, so exactly 5 full batches of 8 form deterministically.
        let region = PaconRegion::launch_paused(
            PaconConfig::new("/app", Topology::new(1, 1), cred).with_commit_batch(8),
            &dfs,
        )
        .unwrap();
        let c = region.client(ClientId(0));
        for i in 0..40 {
            c.create(&format!("/app/f{i}"), &cred, 0o644).unwrap();
        }
        let mut w = region.take_worker(0);
        let mut spins = 0;
        while !region.core().drained() {
            w.step();
            spins += 1;
            assert!(spins < 10_000, "commit never converged");
        }

        let r = region.report();
        assert_eq!(r.committed, 40);
        assert_eq!(r.backlog(), 0);
        assert_eq!(r.batches_flushed, 5);
        assert_eq!(r.batched_ops, 40);
        let text = r.to_string();
        assert!(text.contains("batch:"), "display must surface batching: {text}");

        // Backup copy is complete.
        use fsapi::FileSystem as _;
        assert_eq!(dfs.client().readdir("/app", &cred).unwrap().len(), 40);
    }

    #[test]
    fn report_tracks_batched_reads() {
        let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
        let cred = Credentials::new(1, 1);
        let region = PaconRegion::launch(
            PaconConfig::new("/app", Topology::new(2, 1), cred),
            &dfs,
        )
        .unwrap();
        let c = region.client(ClientId(0));
        for i in 0..12 {
            c.create(&format!("/app/f{i}"), &cred, 0o644).unwrap();
        }
        let paths: Vec<String> = (0..12).map(|i| format!("/app/f{i}")).collect();
        let stats = c.stat_many(&paths, &cred);
        assert!(stats.iter().all(|r| r.is_ok()));
        let entries = c.readdir_plus("/app", &cred).unwrap();
        assert_eq!(entries.len(), 12);

        let r = region.report();
        assert_eq!(r.batched_reads, 2, "one stat_many + one readdir_plus batch");
        assert_eq!(r.batched_read_keys, 24);
        // 24 keys over at most 2 shard nodes per batch.
        assert!(r.read_rtts_saved >= 24 - 4);
        assert!(r.keys_per_batch() > 11.9);
        assert!(r.read_bytes_not_copied > 0, "hits must be served by reference");
        let text = r.to_string();
        assert!(text.contains("reads:"), "display must surface batched reads: {text}");
        region.shutdown().unwrap();
    }

    #[test]
    fn backlog_visible_on_paused_region() {
        let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
        let cred = Credentials::new(1, 1);
        let region = PaconRegion::launch_paused(
            PaconConfig::new("/app", Topology::new(1, 1), cred),
            &dfs,
        )
        .unwrap();
        let c = region.client(ClientId(0));
        for i in 0..5 {
            c.create(&format!("/app/f{i}"), &cred, 0o644).unwrap();
        }
        let r = region.report();
        assert_eq!(r.backlog(), 5, "no workers ran; everything is backlog");
        assert_eq!(r.committed, 0);
    }
}
