//! Failure recovery (Section III.G).
//!
//! A client-node failure loses the uncommitted operations of its
//! consistent region — and only that region, because regions are
//! isolated. Pacon recovers by periodically checkpointing the region's
//! subtree *on the DFS* (checkpoint = subtree copy) and, after a
//! failure, rolling the subtree back to the newest checkpoint and
//! rebuilding the distributed cache (which simply starts empty and
//! refills from the DFS on getattr misses).
//!
//! The checkpoint interface is exposed to the application, as the paper
//! prescribes, so apps choose their own intervals. Checkpoints are
//! optional: without them, the DFS still guarantees crash consistency of
//! everything already committed.

use fsapi::{path as fspath, Credentials, FileKind, FsError, FsResult};
use fsapi::FileSystem;

use crate::region::PaconRegion;

/// Where checkpoints live on the DFS.
pub const CHECKPOINT_ROOT: &str = "/.pacon-checkpoints";

/// Outcome of a checkpoint or rollback.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    pub dirs: u64,
    pub files: u64,
    pub bytes: u64,
}

fn sanitized(root: &str) -> String {
    root.trim_start_matches('/').replace('/', "_")
}

fn checkpoint_dir(region_root: &str, name: &str) -> String {
    format!("{CHECKPOINT_ROOT}/{}/{}", sanitized(region_root), name)
}

/// Recursively copy `src` (a directory) into `dst` on the DFS.
fn copy_tree(
    fs: &dfs::DfsClient,
    src: &str,
    dst: &str,
    cred: &Credentials,
    stats: &mut CheckpointStats,
) -> FsResult<()> {
    // lint: allow(commit-path, checkpoint capture writes the snapshot tree directly; runs quiesced (Section III.G))
    match fs.mkdir(dst, cred, 0o777) {
        Ok(()) | Err(FsError::AlreadyExists) => {}
        Err(e) => return Err(e),
    }
    stats.dirs += 1;
    for name in fs.readdir(src, cred)? {
        let s = fspath::join(src, &name);
        let d = fspath::join(dst, &name);
        let st = fs.stat(&s, cred)?;
        match st.kind {
            FileKind::Dir => copy_tree(fs, &s, &d, cred, stats)?,
            FileKind::File => {
                // lint: allow(commit-path, checkpoint capture writes the snapshot tree directly; runs quiesced (Section III.G))
                match fs.create(&d, cred, st.perm.mode) {
                    Ok(()) | Err(FsError::AlreadyExists) => {}
                    Err(e) => return Err(e),
                }
                if st.size > 0 {
                    let data = fs.read(&s, cred, 0, st.size as usize)?;
                    // lint: allow(commit-path, checkpoint capture writes the snapshot tree directly; runs quiesced (Section III.G))
                    fs.write(&d, cred, 0, &data)?;
                    stats.bytes += data.len() as u64;
                }
                stats.files += 1;
            }
        }
    }
    Ok(())
}

/// Remove every entry *inside* `dir` on the DFS (keeps `dir` itself).
fn clear_dir(fs: &dfs::DfsClient, dir: &str, cred: &Credentials) -> FsResult<()> {
    for name in fs.readdir(dir, cred)? {
        let p = fspath::join(dir, &name);
        match fs.stat(&p, cred)?.kind {
            FileKind::Dir => {
                clear_dir(fs, &p, cred)?;
                // lint: allow(commit-path, rollback clears the stale subtree directly; concurrent clients undefined per paper)
                fs.rmdir(&p, cred)?;
            }
            // lint: allow(commit-path, rollback clears the stale subtree directly; concurrent clients undefined per paper)
            FileKind::File => fs.unlink(&p, cred)?,
        }
    }
    Ok(())
}

impl PaconRegion {
    /// Checkpoint the region's workspace subtree on the DFS under `name`.
    /// Runs a sync barrier first so the backup copy is complete, then
    /// copies the subtree (checkpoint overhead = subtree copy).
    pub fn checkpoint(&self, name: &str) -> FsResult<CheckpointStats> {
        if name.is_empty() || name.contains('/') {
            return Err(FsError::InvalidArgument(format!("bad checkpoint name: {name}")));
        }
        self.sync_barrier();
        let cred = self.core().config.cred;
        let fs = self.dfs().client();
        let dst = checkpoint_dir(&self.core().root, name);
        // Ensure the checkpoint root chain exists.
        let mut prefix = String::new();
        for comp in fspath::components(fspath::parent(&dst).unwrap_or("/")) {
            prefix.push('/');
            prefix.push_str(comp);
            // lint: allow(commit-path, checkpoint root chain is created directly; runs quiesced (Section III.G))
            match fs.mkdir(&prefix, &Credentials::root(), 0o777) {
                Ok(()) | Err(FsError::AlreadyExists) => {}
                Err(e) => return Err(e),
            }
        }
        let mut stats = CheckpointStats::default();
        copy_tree(&fs, &self.core().root, &dst, &cred, &mut stats)?;
        self.core().counters.incr("checkpoints");
        Ok(stats)
    }

    /// Names of this region's checkpoints on the DFS, sorted.
    pub fn list_checkpoints(&self) -> FsResult<Vec<String>> {
        let cred = self.core().config.cred;
        let fs = self.dfs().client();
        let dir = format!("{CHECKPOINT_ROOT}/{}", sanitized(&self.core().root));
        match fs.readdir(&dir, &cred) {
            Ok(names) => Ok(names),
            Err(FsError::NotFound) => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// Delete one checkpoint (reclaims its DFS space).
    pub fn delete_checkpoint(&self, name: &str) -> FsResult<()> {
        if name.is_empty() || name.contains('/') {
            return Err(FsError::InvalidArgument(format!("bad checkpoint name: {name}")));
        }
        let cred = self.core().config.cred;
        let fs = self.dfs().client();
        let dir = checkpoint_dir(&self.core().root, name);
        if fs.stat(&dir, &cred)?.kind != FileKind::Dir {
            return Err(FsError::NotADirectory);
        }
        clear_dir(&fs, &dir, &cred)?;
        // lint: allow(commit-path, checkpoint deletion removes the snapshot dir directly; runs quiesced)
        fs.rmdir(&dir, &cred)
    }

    /// Roll the workspace subtree back to checkpoint `name` and rebuild
    /// (clear) the distributed cache. Intended for the recovery path of a
    /// *freshly launched* region after a node failure; concurrent client
    /// activity during rollback is undefined, as in the paper.
    pub fn rollback(&self, name: &str) -> FsResult<CheckpointStats> {
        let cred = self.core().config.cred;
        let fs = self.dfs().client();
        let src = checkpoint_dir(&self.core().root, name);
        // Verify the checkpoint exists before destroying anything.
        if fs.stat(&src, &cred)?.kind != FileKind::Dir {
            return Err(FsError::NotADirectory);
        }
        clear_dir(&fs, &self.core().root, &cred)?;
        let mut stats = CheckpointStats::default();
        copy_tree(&fs, &src, &self.core().root, &cred, &mut stats)?;
        // Rebuild the primary copy: start empty; getattr misses reload
        // from the DFS.
        self.core().cache_cluster.clear();
        self.core().staging.lock().clear();
        self.core().removed_dirs.write().clear();
        self.core().pending_writebacks.lock().clear();
        // Buffered-but-unpublished ops predate the rollback and must not
        // survive it — drop them and, in durable mode, reset the commit
        // logs so the next launch cannot resurrect rolled-back mutations.
        let mut dropped = 0u64;
        for buf in &self.core().publish_bufs {
            let stale = buf.lock().take_all();
            dropped += stale.len() as u64;
            for _ in &stale {
                self.core().note_completed();
            }
        }
        self.core().counters.add("rollback_dropped_ops", dropped);
        self.core().reset_wals()?;
        self.core().generations.lock().clear();
        self.core().counters.incr("rollbacks");
        Ok(stats)
    }
}
