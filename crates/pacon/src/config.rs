//! Region configuration (Section III.B: workspace path + node addresses,
//! plus the tunables the paper describes).

use fsapi::Credentials;
use simnet::Topology;

use crate::permission::RegionPermissions;

/// Configuration an application hands to Pacon before running.
#[derive(Debug, Clone)]
pub struct PaconConfig {
    /// The application's workspace directory — the root of the consistent
    /// region. Must be a normalized absolute path.
    pub workspace: String,
    /// The nodes the application runs on; Pacon launches one cache shard
    /// and one commit process per node.
    pub topology: Topology,
    /// The application's system user (one user per HPC application,
    /// Section II.A).
    pub cred: Credentials,
    /// Small-file threshold in bytes, *including metadata* (Section
    /// III.D-2; 4 KiB in the paper's prototype). Files at or below this
    /// size keep their data inline in the metadata cache.
    pub small_file_threshold: usize,
    /// Whether create/mkdir verify the parent directory exists (Section
    /// III.C; applications that guarantee correct creation order can turn
    /// this off).
    pub parent_check: bool,
    /// Predefined batch permissions. `None` = the default policy (all
    /// entries readable/writable/executable by the creating user).
    pub permissions: Option<RegionPermissions>,
    /// Cache-space eviction threshold in bytes over the whole region
    /// (`None` = never evict; Section III.F assumes pressure is rare).
    pub eviction_threshold: Option<usize>,
    /// Capacity of each per-node commit queue.
    pub commit_queue_capacity: usize,
    /// Group commit: buffer up to this many operations per node before
    /// publishing them as one batched queue message. `1` disables
    /// batching — every op is published directly, the paper prototype's
    /// behaviour. Barriers always flush the buffer regardless of fill.
    pub commit_batch_size: usize,
    /// Coalesce buffered operations before they reach the queue: a
    /// buffered `Create` cancels against a later `Unlink` of the same
    /// path, and repeated inline-data writebacks for one path collapse
    /// into a single entry. Only consulted when `commit_batch_size > 1`.
    pub commit_batch_coalescing: bool,
    /// Give up retrying one op's commit after this many attempts (guards
    /// against workloads that violate the namespace conventions).
    pub max_commit_retries: u32,
    /// Batched reads: serve multi-path lookups (`stat_many`,
    /// `readdir_plus`, batch-permission loads, merge warm-up) with one
    /// cache round trip per shard node instead of one per path — the
    /// read-side analogue of group commit. Disabled only for the
    /// unbatched baseline in experiments.
    pub read_batching: bool,
    /// Ablation switch: check permissions the traditional way — one
    /// distributed-cache lookup per path component — instead of the batch
    /// table match. Quantifies what Section III.C saves; never enabled in
    /// normal operation.
    pub hierarchical_permission_check: bool,
    /// Ablation switch: commit every metadata update to the DFS
    /// *synchronously* (strong consistency between primary and backup
    /// copy), disabling the async commit queue. Quantifies what partial
    /// consistency buys; never enabled in normal operation.
    pub synchronous_commit: bool,
    /// Base id for this region's stations in the queueing model
    /// (`KvShard`/`CommitProc`). Multi-application experiments give each
    /// region a disjoint base so the simulated regions do not share
    /// service stations — they are on different physical nodes.
    pub station_base: u32,
    /// Durable commit queue: journal every commit op into a per-node
    /// write-ahead log before the mutation is acknowledged locally, and
    /// replay the log (idempotently) on the next launch. Requires
    /// `wal_dir`. Off by default — the paper's prototype is volatile.
    pub commit_durability: bool,
    /// Directory holding the per-node commit logs and the region's
    /// incarnation counter. Must outlive the process for recovery to
    /// mean anything.
    pub wal_dir: Option<std::path::PathBuf>,
    /// Group fsync: sync the log to disk every `n` appends instead of on
    /// every append. `1` = fsync per op (strict durability); larger
    /// values trade the tail of the crash window for throughput.
    pub wal_fsync_batch: usize,
    /// Test knob: fail the launch-time WAL replay after this many
    /// recovered ops have applied, *before* the logs are truncated — the
    /// crash-during-recovery (double-replay) scenario.
    pub recovery_crash_after: Option<u64>,
    /// Fault plane: total virtual ns one cache RPC may spend sleeping
    /// across retries before the client declares the node unreachable
    /// and enters degraded mode. Measured on the region's virtual clock
    /// (no wall time is ever consumed).
    pub rpc_deadline: u64,
    /// Fault plane: retry attempts after the initial try of a cache RPC.
    pub retry_budget: u32,
    /// Fault plane: first retry's nominal backoff in virtual ns; doubles
    /// per retry with deterministic full jitter (see `retry::RetryPolicy`).
    pub backoff_base: u64,
}

impl PaconConfig {
    /// Config with the paper's defaults.
    pub fn new(workspace: &str, topology: Topology, cred: Credentials) -> Self {
        Self {
            workspace: workspace.to_string(),
            topology,
            cred,
            small_file_threshold: 4096,
            parent_check: true,
            permissions: None,
            eviction_threshold: None,
            commit_queue_capacity: 1 << 16,
            commit_batch_size: 1,
            commit_batch_coalescing: true,
            max_commit_retries: 10_000,
            read_batching: true,
            hierarchical_permission_check: false,
            synchronous_commit: false,
            station_base: 0,
            commit_durability: false,
            wal_dir: None,
            wal_fsync_batch: 1,
            recovery_crash_after: None,
            rpc_deadline: 8_000_000,
            retry_budget: 4,
            backoff_base: 100_000,
        }
    }

    /// Builder-style: set the per-RPC retry deadline (virtual ns).
    pub fn with_rpc_deadline(mut self, ns: u64) -> Self {
        self.rpc_deadline = ns;
        self
    }

    /// Builder-style: set the cache-RPC retry budget.
    pub fn with_retry_budget(mut self, attempts: u32) -> Self {
        self.retry_budget = attempts;
        self
    }

    /// Builder-style: set the base backoff delay (virtual ns).
    pub fn with_backoff_base(mut self, ns: u64) -> Self {
        assert!(ns >= 2, "backoff base must be at least 2 ns (jitter needs range)");
        self.backoff_base = ns;
        self
    }

    /// Builder-style: enable the durable commit queue, journaling into
    /// per-node write-ahead logs under `wal_dir`.
    pub fn with_durability(mut self, wal_dir: impl Into<std::path::PathBuf>) -> Self {
        self.commit_durability = true;
        self.wal_dir = Some(wal_dir.into());
        self
    }

    /// Builder-style: fsync the commit log every `n` appends.
    pub fn with_wal_fsync_batch(mut self, n: usize) -> Self {
        assert!(n >= 1, "fsync batch must be at least 1");
        self.wal_fsync_batch = n;
        self
    }

    /// Builder-style: predefine batch permissions.
    pub fn with_permissions(mut self, perms: RegionPermissions) -> Self {
        self.permissions = Some(perms);
        self
    }

    /// Builder-style: disable the parent-existence check.
    pub fn without_parent_check(mut self) -> Self {
        self.parent_check = false;
        self
    }

    /// Builder-style: set the small-file threshold.
    pub fn with_small_file_threshold(mut self, bytes: usize) -> Self {
        self.small_file_threshold = bytes;
        self
    }

    /// Builder-style: enable eviction above `bytes` of cache usage.
    pub fn with_eviction_threshold(mut self, bytes: usize) -> Self {
        self.eviction_threshold = Some(bytes);
        self
    }

    /// Builder-style: enable the per-component permission-check ablation.
    pub fn with_hierarchical_permission_check(mut self) -> Self {
        self.hierarchical_permission_check = true;
        self
    }

    /// Builder-style: set the queueing-model station base of this region.
    pub fn with_station_base(mut self, base: u32) -> Self {
        self.station_base = base;
        self
    }

    /// Builder-style: enable the synchronous-commit ablation.
    pub fn with_synchronous_commit(mut self) -> Self {
        self.synchronous_commit = true;
        self
    }

    /// Builder-style: enable group commit with batches of up to `n` ops.
    pub fn with_commit_batch(mut self, n: usize) -> Self {
        assert!(n >= 1, "batch size must be at least 1");
        self.commit_batch_size = n;
        self
    }

    /// Builder-style: disable pre-queue coalescing (keep batching).
    pub fn without_commit_coalescing(mut self) -> Self {
        self.commit_batch_coalescing = false;
        self
    }

    /// Builder-style: disable batched reads (one cache round trip per
    /// path — the unbatched baseline).
    pub fn without_read_batching(mut self) -> Self {
        self.read_batching = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PaconConfig::new("/app", Topology::new(4, 20), Credentials::new(1, 1));
        assert_eq!(c.small_file_threshold, 4096);
        assert!(c.parent_check);
        assert!(c.permissions.is_none());
        assert!(c.eviction_threshold.is_none());
    }

    #[test]
    fn builders_compose() {
        let c = PaconConfig::new("/app", Topology::new(1, 1), Credentials::new(1, 1))
            .without_parent_check()
            .with_small_file_threshold(1024)
            .with_eviction_threshold(1 << 20);
        assert!(!c.parent_check);
        assert_eq!(c.small_file_threshold, 1024);
        assert_eq!(c.eviction_threshold, Some(1 << 20));
    }

    #[test]
    fn batching_defaults_off_and_builders_set_it() {
        let c = PaconConfig::new("/app", Topology::new(1, 1), Credentials::new(1, 1));
        assert_eq!(c.commit_batch_size, 1, "seed behaviour: direct publish");
        assert!(c.commit_batch_coalescing);
        let c = c.with_commit_batch(32).without_commit_coalescing();
        assert_eq!(c.commit_batch_size, 32);
        assert!(!c.commit_batch_coalescing);
    }

    #[test]
    fn fault_knobs_default_and_build() {
        let c = PaconConfig::new("/app", Topology::new(1, 1), Credentials::new(1, 1));
        assert_eq!(c.rpc_deadline, 8_000_000);
        assert_eq!(c.retry_budget, 4);
        assert_eq!(c.backoff_base, 100_000);
        let c = c.with_rpc_deadline(1_000).with_retry_budget(2).with_backoff_base(10);
        assert_eq!((c.rpc_deadline, c.retry_budget, c.backoff_base), (1_000, 2, 10));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = PaconConfig::new("/app", Topology::new(1, 1), Credentials::new(1, 1))
            .with_commit_batch(0);
    }
}
