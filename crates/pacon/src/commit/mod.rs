//! The commit module (Sections III.D-1 and III.E).
//!
//! Metadata updates run on the distributed cache first, then an
//! *operation message* goes into the per-node commit queue. One commit
//! process per node (the subscriber) replays messages against the DFS:
//!
//! * **Independent commit** — create/mkdir/rm and inline-data writebacks
//!   carry no ordering constraint beyond the namespace conventions; a
//!   commit that the DFS rejects (parent not yet created, pending
//!   removal) is simply resubmitted until it succeeds.
//! * **Barrier commit** — dependent operations (rmdir, readdir) publish a
//!   barrier marker into every queue; each commit process finishes
//!   everything before its marker (including its retry backlog), reports
//!   to the barrier board, and stalls until the dependent operation
//!   completes and the epoch advances.

pub mod barrier;
pub mod op;
pub mod publish;
pub mod wal;
pub mod worker;

pub use barrier::BarrierBoard;
pub use op::{CommitOp, QueueMsg};
pub use publish::{Buffered, PublishBuffer};
pub use wal::{CommitWal, CrashPoint, CrashSwitch, WalEntry};
pub use worker::{CommitWorker, WorkerStep};
