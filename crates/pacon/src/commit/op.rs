//! Operation messages carried by the commit queue.

/// One committable operation. The paper's Table I: create/mkdir/rm are
/// asynchronous + independent; rmdir/readdir are synchronous + barrier
/// (they never appear as queue payloads — only their barrier markers do).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitOp {
    Mkdir { path: String, mode: u16 },
    Create { path: String, mode: u16 },
    Unlink { path: String },
    /// Write back a small file's inline data to the DFS backup copy. The
    /// commit process reads the *current* primary copy from the cache at
    /// commit time, so out-of-order writebacks from different queues can
    /// never regress the backup copy to stale data.
    WriteInline { path: String },
    /// Barrier marker: every op before this marker belongs to an epoch
    /// `< epoch` and must be committed before the dependent operation.
    Barrier { epoch: u64 },
    /// Group commit: one queue message carrying many single operations in
    /// publish order. Each inner message keeps its own client, epoch and
    /// timestamp (they may straddle a coalescing window); inner ops are
    /// always single ops — batches never nest and never carry barriers.
    Batch(Vec<QueueMsg>),
}

impl CommitOp {
    /// Target path, if the op has one.
    pub fn path(&self) -> Option<&str> {
        match self {
            CommitOp::Mkdir { path, .. }
            | CommitOp::Create { path, .. }
            | CommitOp::Unlink { path }
            | CommitOp::WriteInline { path } => Some(path),
            CommitOp::Barrier { .. } | CommitOp::Batch(_) => None,
        }
    }

    /// True for operations that create a namespace entry (the kind that
    /// may be discarded when their directory is removed, Section III.D-1).
    pub fn is_creation(&self) -> bool {
        matches!(self, CommitOp::Mkdir { .. } | CommitOp::Create { .. })
    }
}

/// Envelope pushed into the per-node queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueMsg {
    pub op: CommitOp,
    /// Publishing client (diagnostics).
    pub client: u32,
    /// Barrier epoch the publisher observed (Section III.E-2).
    pub epoch: u64,
    /// Logical timestamp at publish time.
    pub timestamp: u64,
    /// Replay identity for the durable commit log. `OpId::NONE` in
    /// volatile mode and on envelopes that are never replayed (barrier
    /// markers, batch wrappers).
    pub id: dfs::OpId,
    /// Published while the region was degraded. A degraded admission
    /// check can only consult the committed backup view, so such a
    /// creation may duplicate one that is already acknowledged but not
    /// yet committed — the commit worker settles its `AlreadyExists` as
    /// idempotent success instead of retrying it.
    pub degraded: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_extraction() {
        assert_eq!(CommitOp::Mkdir { path: "/a".into(), mode: 0o755 }.path(), Some("/a"));
        assert_eq!(CommitOp::Unlink { path: "/a/f".into() }.path(), Some("/a/f"));
        assert_eq!(CommitOp::Barrier { epoch: 3 }.path(), None);
    }

    #[test]
    fn creation_classification() {
        assert!(CommitOp::Create { path: "/f".into(), mode: 0 }.is_creation());
        assert!(CommitOp::Mkdir { path: "/d".into(), mode: 0 }.is_creation());
        assert!(!CommitOp::Unlink { path: "/f".into() }.is_creation());
        assert!(!CommitOp::WriteInline { path: "/f".into() }.is_creation());
    }
}
