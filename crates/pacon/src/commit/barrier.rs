//! The barrier board: multi-node rendezvous for barrier commit
//! (Section III.E-2, Fig. 6).
//!
//! One dependent operation at a time (they are serialized region-wide):
//!
//! 1. the triggering client calls [`BarrierBoard::start_barrier`], which
//!    takes the exclusive barrier slot and yields the new epoch number;
//! 2. the client pushes a `Barrier { epoch }` marker into every node's
//!    queue and waits via [`BarrierGuard::wait_workers`];
//! 3. each commit process drains everything ahead of its marker, then
//!    reports [`BarrierBoard::worker_reached`] and stalls;
//! 4. once all workers reached, the client performs the dependent
//!    operation synchronously and calls [`BarrierGuard::complete`], which
//!    advances the epoch and releases the workers.
//!
//! Both blocking waits (threaded mode) and non-blocking polls (the
//! discrete-event harness) are provided.

use syncguard::{level, Condvar, Mutex, MutexGuard};

struct BoardState {
    /// Completed epoch: all ops with `epoch <= current` are committed.
    current: u64,
    /// Epoch of the in-flight barrier, if one is active.
    active: Option<u64>,
    /// Workers that reported reaching the active barrier.
    reached: usize,
}

/// Region-wide barrier coordination.
///
/// Two locks with very different spans: `slot` is *outermost* — it is held
/// by the triggering client across the whole dependent operation (publish
/// flush, queue sends, cache invalidation, the DFS mutation itself) — while
/// `state` is a short-lived leaf taken by clients and workers alike, often
/// while the publish-buffer lock is already held (the epoch read in
/// `flush_publish_buffer`). Hence the distinct lock levels.
pub struct BarrierBoard {
    workers: usize,
    state: Mutex<BoardState>,
    cv: Condvar,
    /// Serializes dependent operations.
    slot: Mutex<()>,
}

impl BarrierBoard {
    /// `workers` = number of commit processes (one per node).
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "barrier board needs at least one worker");
        Self {
            workers,
            state: Mutex::new(
                level::BARRIER,
                "pacon.barrier.state",
                BoardState { current: 0, active: None, reached: 0 },
            ),
            cv: Condvar::new(),
            slot: Mutex::new(level::REGION, "pacon.barrier.slot", ()),
        }
    }

    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Epoch whose operations are all known committed.
    pub fn current_epoch(&self) -> u64 {
        self.state.lock().current
    }

    /// Begin a dependent operation: blocks until the exclusive slot is
    /// free, then opens epoch `current + 1`.
    pub fn start_barrier(&self) -> BarrierGuard<'_> {
        let slot = self.slot.lock();
        let mut st = self.state.lock();
        debug_assert!(st.active.is_none(), "exclusive slot must prevent double barriers");
        let epoch = st.current + 1;
        st.active = Some(epoch);
        st.reached = 0;
        drop(st);
        BarrierGuard { board: self, epoch, _slot: slot, completed: false }
    }

    /// A commit process reports that it consumed the marker for `epoch`
    /// and has nothing older left.
    pub fn worker_reached(&self, epoch: u64) {
        let mut st = self.state.lock();
        assert_eq!(
            st.active,
            Some(epoch),
            "worker reached barrier {epoch} but active is {:?}",
            st.active
        );
        st.reached += 1;
        assert!(st.reached <= self.workers, "more reports than workers");
        self.cv.notify_all();
    }

    /// Non-blocking: has the barrier for `epoch` been completed (workers
    /// may resume)?
    pub fn is_released(&self, epoch: u64) -> bool {
        self.state.lock().current >= epoch
    }

    /// Blocking worker wait for the epoch to advance past `epoch - 1`.
    pub fn wait_released(&self, epoch: u64) {
        let mut st = self.state.lock();
        while st.current < epoch {
            self.cv.wait(&mut st);
        }
    }

    fn wait_all_reached(&self, epoch: u64) {
        let mut st = self.state.lock();
        while st.active == Some(epoch) && st.reached < self.workers {
            self.cv.wait(&mut st);
        }
    }

    /// Non-blocking: how many workers reached the active barrier?
    pub fn reached_count(&self) -> usize {
        self.state.lock().reached
    }

    /// Non-blocking variant for the DES driver: true once all workers
    /// reached `epoch`.
    pub fn all_reached(&self, epoch: u64) -> bool {
        let st = self.state.lock();
        st.active == Some(epoch) && st.reached >= self.workers
    }

    fn complete_inner(&self, epoch: u64) {
        let mut st: MutexGuard<'_, BoardState> = self.state.lock();
        assert_eq!(st.active, Some(epoch));
        st.active = None;
        st.current = epoch;
        st.reached = 0;
        self.cv.notify_all();
    }
}

/// RAII handle of an in-flight barrier, held by the triggering client.
pub struct BarrierGuard<'b> {
    board: &'b BarrierBoard,
    epoch: u64,
    _slot: MutexGuard<'b, ()>,
    completed: bool,
}

impl BarrierGuard<'_> {
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Block until every commit process has drained up to the marker.
    pub fn wait_workers(&self) {
        self.board.wait_all_reached(self.epoch);
    }

    /// Dependent operation done: advance the epoch and release workers.
    pub fn complete(mut self) {
        self.completed = true;
        self.board.complete_inner(self.epoch);
    }
}

impl Drop for BarrierGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            // A failed dependent op must still release the workers, or the
            // region wedges.
            self.board.complete_inner(self.epoch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn epochs_advance_in_order() {
        let b = BarrierBoard::new(1);
        assert_eq!(b.current_epoch(), 0);
        let g = b.start_barrier();
        assert_eq!(g.epoch(), 1);
        b.worker_reached(1);
        g.wait_workers();
        g.complete();
        assert_eq!(b.current_epoch(), 1);
        assert!(b.is_released(1));
        assert!(!b.is_released(2));
    }

    #[test]
    fn guard_drop_releases_on_failure() {
        let b = BarrierBoard::new(1);
        {
            let g = b.start_barrier();
            b.worker_reached(g.epoch());
            // Dependent op "failed": guard dropped without complete().
        }
        assert_eq!(b.current_epoch(), 1, "drop must still advance the epoch");
    }

    #[test]
    fn multi_worker_rendezvous_with_threads() {
        let b = Arc::new(BarrierBoard::new(3));
        let g = b.start_barrier();
        let epoch = g.epoch();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                b.worker_reached(epoch);
                b.wait_released(epoch);
            }));
        }
        g.wait_workers();
        assert_eq!(b.reached_count(), 3);
        g.complete();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.current_epoch(), epoch);
    }

    #[test]
    fn concurrent_barriers_serialize() {
        let b = Arc::new(BarrierBoard::new(1));
        let b2 = Arc::clone(&b);
        let g1 = b.start_barrier();
        let t = std::thread::spawn(move || {
            // Blocks until g1 completes.
            let g2 = b2.start_barrier();
            assert_eq!(g2.epoch(), 2);
            b2.worker_reached(2);
            g2.wait_workers();
            g2.complete();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.worker_reached(g1.epoch());
        g1.wait_workers();
        g1.complete();
        t.join().unwrap();
        assert_eq!(b.current_epoch(), 2);
    }

    #[test]
    fn polling_interface_for_des() {
        let b = BarrierBoard::new(2);
        let g = b.start_barrier();
        assert!(!b.all_reached(1));
        b.worker_reached(1);
        assert!(!b.all_reached(1));
        b.worker_reached(1);
        assert!(b.all_reached(1));
        assert!(!b.is_released(1));
        g.complete();
        assert!(b.is_released(1));
    }
}
