//! Durable commit queue: the per-node write-ahead log.
//!
//! In durable mode every committable operation is journaled here —
//! framed by the `lsmkv` WAL (length + CRC32, torn-tail tolerant) —
//! *before* the client's mutation is acknowledged locally. The record
//! carries the op's `(path, write_id, generation)` replay identity, so
//! the log can be replayed idempotently after a crash, any number of
//! times. Once every enqueued op has been confirmed against the DFS the
//! log is truncated.
//!
//! Record mapping onto the lsmkv frame: `seq` = `write_id`, `key` =
//! the op's path, `value` = the payload below.
//!
//! ```text
//! u8  tag (0 mkdir | 1 create | 2 unlink | 3 write)
//! u8  flags           (bit 0: published while degraded)
//! u16 mode            (creations; 0 otherwise)
//! u64 generation
//! u64 epoch
//! u32 client
//! u64 timestamp
//! u32 snap_len | snapshot bytes   (tag 3: full inline content)
//! ```
//!
//! Fsyncs are batched: the log syncs every `wal_fsync_batch` appends
//! (`1` = strict per-op durability). Inline-data writebacks append one
//! record per *client write* carrying a full content snapshot — the last
//! snapshot for a path is exactly the acknowledged content at crash
//! time, even when the queue coalesced the writebacks themselves.
//!
//! This module also hosts the [`CrashSwitch`] used by the crash-kill
//! test harness: a lock-free trigger that deterministically "kills" the
//! node at one of four pipeline stages.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use fsapi::{FsError, FsResult};
use lsmkv::wal::{Wal, WalRecord};
use syncguard::{level, Mutex};

use super::op::{CommitOp, QueueMsg};

const TAG_MKDIR: u8 = 0;
const TAG_CREATE: u8 = 1;
const TAG_UNLINK: u8 = 2;
const TAG_WRITE: u8 = 3;

/// One replayed log record: the reconstructed queue envelope plus, for
/// writeback records, the inline-content snapshot taken at append time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    pub msg: QueueMsg,
    pub snapshot: Option<Vec<u8>>,
}

fn lsm_err(e: lsmkv::LsmError) -> FsError {
    FsError::Backend(format!("commit wal: {e}"))
}

fn encode_value(msg: &QueueMsg, snapshot: Option<&[u8]>) -> FsResult<Vec<u8>> {
    let (tag, mode) = match &msg.op {
        CommitOp::Mkdir { mode, .. } => (TAG_MKDIR, *mode),
        CommitOp::Create { mode, .. } => (TAG_CREATE, *mode),
        CommitOp::Unlink { .. } => (TAG_UNLINK, 0),
        CommitOp::WriteInline { .. } => (TAG_WRITE, 0),
        CommitOp::Barrier { .. } | CommitOp::Batch(_) => {
            return Err(FsError::Backend("commit wal: unloggable op".into()));
        }
    };
    let snap = snapshot.unwrap_or(&[]);
    let mut v = Vec::with_capacity(2 + 2 + 8 + 8 + 4 + 8 + 4 + snap.len());
    v.push(tag);
    v.push(msg.degraded as u8);
    v.extend_from_slice(&mode.to_le_bytes());
    v.extend_from_slice(&msg.id.generation.to_le_bytes());
    v.extend_from_slice(&msg.epoch.to_le_bytes());
    v.extend_from_slice(&msg.client.to_le_bytes());
    v.extend_from_slice(&msg.timestamp.to_le_bytes());
    v.extend_from_slice(&(snap.len() as u32).to_le_bytes());
    v.extend_from_slice(snap);
    Ok(v)
}

fn decode_record(rec: &WalRecord) -> Option<WalEntry> {
    let path = String::from_utf8(rec.key.clone()).ok()?;
    let v = rec.value.as_deref()?;
    if v.len() < 2 + 2 + 8 + 8 + 4 + 8 + 4 {
        return None;
    }
    let tag = v[0];
    let degraded = v[1] & 1 != 0;
    let mode = u16::from_le_bytes(v[2..4].try_into().ok()?);
    let generation = u64::from_le_bytes(v[4..12].try_into().ok()?);
    let epoch = u64::from_le_bytes(v[12..20].try_into().ok()?);
    let client = u32::from_le_bytes(v[20..24].try_into().ok()?);
    let timestamp = u64::from_le_bytes(v[24..32].try_into().ok()?);
    let snap_len = u32::from_le_bytes(v[32..36].try_into().ok()?) as usize;
    if v.len() != 36 + snap_len {
        return None;
    }
    let (op, snapshot) = match tag {
        TAG_MKDIR => (CommitOp::Mkdir { path, mode }, None),
        TAG_CREATE => (CommitOp::Create { path, mode }, None),
        TAG_UNLINK => (CommitOp::Unlink { path }, None),
        TAG_WRITE => (CommitOp::WriteInline { path }, Some(v[36..].to_vec())),
        _ => return None,
    };
    Some(WalEntry {
        msg: QueueMsg {
            op,
            client,
            epoch,
            timestamp,
            id: dfs::OpId { write_id: rec.seq, generation },
            degraded,
        },
        snapshot,
    })
}

struct WalInner {
    wal: Wal,
    /// Appends since the last fsync.
    unsynced: usize,
    fsync_batch: usize,
}

/// One node's durable commit log.
pub struct CommitWal {
    inner: Mutex<WalInner>,
}

impl CommitWal {
    /// Crash-safe open: truncates any torn/corrupt tail and returns the
    /// surviving entries for replay. Records whose payload fails to
    /// decode end the replay (they can only arise from a frame-level
    /// collision, which the CRC makes astronomically unlikely).
    pub fn open(path: &Path, fsync_batch: usize) -> FsResult<(Self, Vec<WalEntry>)> {
        let (wal, records) = Wal::open_recovered(path, false).map_err(lsm_err)?;
        let mut entries = Vec::with_capacity(records.len());
        for rec in &records {
            match decode_record(rec) {
                Some(e) => entries.push(e),
                None => break,
            }
        }
        let this = Self {
            inner: Mutex::new(
                level::WAL,
                "pacon.commit.wal",
                WalInner { wal, unsynced: 0, fsync_batch: fsync_batch.max(1) },
            ),
        };
        Ok((this, entries))
    }

    /// Append one op record; returns whether this append fsynced the log
    /// (for the region's `wal_fsyncs` counter).
    pub fn append(&self, msg: &QueueMsg, snapshot: Option<&[u8]>) -> FsResult<bool> {
        let value = encode_value(msg, snapshot)?;
        let path = msg.op.path().ok_or_else(|| FsError::Backend("commit wal: pathless op".into()))?;
        let mut g = self.inner.lock();
        // lint: allow(hold-across-blocking, durability ordering: the op must hit the log before publish; WAL mutex is terminal)
        g.wal.append(msg.id.write_id, path.as_bytes(), Some(&value)).map_err(lsm_err)?;
        g.unsynced += 1;
        if g.unsynced >= g.fsync_batch {
            // lint: allow(hold-across-blocking, batched fsync under the WAL mutex; no lock is taken past it)
            g.wal.sync().map_err(lsm_err)?;
            g.unsynced = 0;
            return Ok(true);
        }
        Ok(false)
    }

    /// Truncate the log if `drained` still holds under the log lock.
    /// Callers guarantee every append happens after its op is counted as
    /// enqueued, so `drained() == true` under this lock implies every
    /// logged op has been confirmed — none of the wiped records is still
    /// needed. Returns whether the log was truncated.
    pub fn truncate_if(&self, drained: impl Fn() -> bool) -> FsResult<bool> {
        let mut g = self.inner.lock();
        if !drained() {
            return Ok(false);
        }
        // lint: allow(hold-across-blocking, truncate reopens and syncs the log under the same terminal WAL mutex)
        g.wal.reset().map_err(lsm_err)?;
        g.unsynced = 0;
        Ok(true)
    }

    /// Unconditional truncate (recovery finished; checkpoint rollback).
    pub fn reset(&self) -> FsResult<()> {
        let mut g = self.inner.lock();
        // lint: allow(hold-across-blocking, reset reopens and syncs the log under the same terminal WAL mutex)
        g.wal.reset().map_err(lsm_err)?;
        g.unsynced = 0;
        Ok(())
    }
}

/// The four pipeline stages the crash-kill harness can kill a node at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// In the client's publish path, before the WAL append: the op was
    /// never durable and the client saw an error — an uncrashed oracle
    /// excludes it.
    PreAppend = 0,
    /// After the WAL append, before the queue send: the client saw an
    /// error but the op *is* durable — recovery must still apply it.
    PostAppend = 1,
    /// In the commit worker, after the DFS applied a message but before
    /// it was settled/confirmed: replay hits the seen-cache.
    MidBatch = 2,
    /// Everything applied, crash before the log truncates: the whole log
    /// replays as no-ops.
    PreTruncate = 3,
}

/// Deterministic kill trigger. Lock-free because `hit` runs on hot
/// paths, sometimes while the WAL lock is held. Once tripped, the node
/// is dead: *every* subsequent `hit` reports `true` regardless of stage,
/// so all pipeline entry points fail fast.
#[derive(Debug)]
pub struct CrashSwitch {
    armed: AtomicU32,
    countdown: AtomicU32,
    tripped: AtomicBool,
}

impl CrashSwitch {
    const DISARMED: u32 = u32::MAX;

    pub fn new() -> Self {
        Self {
            armed: AtomicU32::new(Self::DISARMED),
            countdown: AtomicU32::new(0),
            tripped: AtomicBool::new(false),
        }
    }

    /// Arm the switch to trip on the `nth` (1-based) hit of `point`.
    pub fn arm(&self, point: CrashPoint, nth: u32) {
        assert!(nth >= 1, "nth is 1-based");
        self.countdown.store(nth, Ordering::Release);
        self.armed.store(point as u32, Ordering::Release);
    }

    /// Report passing `point`; returns whether the node is (now) dead.
    pub fn hit(&self, point: CrashPoint) -> bool {
        if self.tripped.load(Ordering::Acquire) {
            return true;
        }
        if self.armed.load(Ordering::Acquire) != point as u32 {
            return false;
        }
        match self
            .countdown
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| c.checked_sub(1))
        {
            Ok(1) => {
                self.tripped.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    /// The error a crashed pipeline stage surfaces to its caller.
    pub fn error(point: CrashPoint) -> FsError {
        FsError::Backend(format!("crash-kill: {point:?}"))
    }

    /// Whether an error came from a crash kill (harness support).
    pub fn is_crash_error(e: &FsError) -> bool {
        matches!(e, FsError::Backend(s) if s.starts_with("crash-kill"))
    }
}

impl Default for CrashSwitch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pacon-cwal-{}-{}-{:?}",
            name,
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn msg(op: CommitOp, write_id: u64, generation: u64) -> QueueMsg {
        QueueMsg {
            op,
            client: 7,
            epoch: 2,
            timestamp: 99,
            id: dfs::OpId { write_id, generation },
            degraded: false,
        }
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("node0.wal");
        {
            let (w, entries) = CommitWal::open(&path, 1).unwrap();
            assert!(entries.is_empty());
            w.append(&msg(CommitOp::Mkdir { path: "/w/d".into(), mode: 0o755 }, 5, 5), None)
                .unwrap();
            w.append(&msg(CommitOp::Create { path: "/w/d/f".into(), mode: 0o644 }, 6, 6), None)
                .unwrap();
            w.append(&msg(CommitOp::WriteInline { path: "/w/d/f".into() }, 7, 6), Some(b"abc"))
                .unwrap();
            w.append(&msg(CommitOp::Unlink { path: "/w/d/f".into() }, 8, 8), None).unwrap();
        }
        let (_, entries) = CommitWal::open(&path, 1).unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].msg.op, CommitOp::Mkdir { path: "/w/d".into(), mode: 0o755 });
        assert_eq!(entries[0].msg.id.write_id, 5);
        assert_eq!(entries[1].msg.client, 7);
        assert_eq!(entries[2].snapshot.as_deref(), Some(&b"abc"[..]));
        assert_eq!(entries[2].msg.id, dfs::OpId { write_id: 7, generation: 6 });
        assert_eq!(entries[3].msg.op, CommitOp::Unlink { path: "/w/d/f".into() });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_batching_counts_syncs() {
        let dir = tmpdir("fsync");
        let (w, _) = CommitWal::open(&dir.join("n.wal"), 3).unwrap();
        let mut syncs = 0;
        for i in 0..7u64 {
            let m = msg(CommitOp::Create { path: format!("/f{i}"), mode: 0o644 }, i + 1, i + 1);
            if w.append(&m, None).unwrap() {
                syncs += 1;
            }
        }
        assert_eq!(syncs, 2, "7 appends at batch 3 = syncs after #3 and #6");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_if_respects_the_guard() {
        let dir = tmpdir("trunc");
        let path = dir.join("n.wal");
        let (w, _) = CommitWal::open(&path, 1).unwrap();
        w.append(&msg(CommitOp::Create { path: "/f".into(), mode: 0o644 }, 1, 1), None).unwrap();
        assert!(!w.truncate_if(|| false).unwrap());
        assert_eq!(CommitWal::open(&path, 1).unwrap().1.len(), 1);
        assert!(w.truncate_if(|| true).unwrap());
        assert!(CommitWal::open(&path, 1).unwrap().1.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_switch_trips_on_the_nth_hit_and_stays_dead() {
        let s = CrashSwitch::new();
        assert!(!s.hit(CrashPoint::PreAppend), "disarmed switch never trips");
        s.arm(CrashPoint::MidBatch, 3);
        assert!(!s.hit(CrashPoint::MidBatch));
        assert!(!s.hit(CrashPoint::PreAppend), "other stages don't consume the countdown");
        assert!(!s.hit(CrashPoint::MidBatch));
        assert!(s.hit(CrashPoint::MidBatch), "third hit trips");
        assert!(s.tripped());
        assert!(s.hit(CrashPoint::PreAppend), "a dead node is dead at every stage");
    }
}
