//! The per-node commit process (the queue subscriber of Fig. 5).
//!
//! `step()` is non-blocking and handles exactly one unit of work, so the
//! same worker can be driven by a dedicated thread (real deployments,
//! threaded tests) or by the discrete-event harness in virtual time.
//!
//! Independent commit: operations the DFS rejects for a namespace-
//! convention reason (parent not created yet, pending removal) go to a
//! retry backlog and are resubmitted (Section III.E-1). Creations under
//! a directory that a barrier commit removed are discarded instead
//! (Section III.D-1). Barrier markers flush the backlog, report to the
//! barrier board and stall the worker until the dependent operation
//! completes (Section III.E-2).
//!
//! Group commit: a [`CommitOp::Batch`] message carries many operations
//! from the node's publish buffer. The worker pays the dispatch cost
//! once per message, commits the namespace ops through a single batched
//! DFS RPC (one namespace-lock acquisition server-side), and settles
//! each inner op independently — failed ops *disaggregate* into the
//! single-op retry backlog, so a partial batch failure degrades to
//! exactly the paper's independent-commit behaviour. When the queue runs
//! empty the worker also pulls whatever is still sitting in its node's
//! publish buffer, which gives quiesce/shutdown liveness without a flush
//! timer.

use std::collections::VecDeque;
use std::sync::Arc;

use dfs::{BatchOp, DfsClient};
use fsapi::{path as fspath, FsError, FsResult};
use fsapi::FileSystem;
use mq::{Consumer, TryRecvError};
use simnet::{charge, NodeId, Station};

use crate::cache::MetaCache;
use crate::commit::op::{CommitOp, QueueMsg};
use crate::commit::wal::CrashPoint;
use crate::region::RegionCore;

/// Outcome of one `step()` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerStep {
    /// One operation applied to the DFS.
    Committed,
    /// One batched message handled; per-op outcomes tallied. Retried ops
    /// were disaggregated into the single-op retry backlog.
    Batch { committed: u32, retried: u32, discarded: u32 },
    /// One operation failed a namespace check and went (back) to the
    /// retry backlog.
    Retried,
    /// One operation was discarded (removed directory, or retry budget
    /// exhausted).
    Discarded,
    /// A barrier marker was consumed and the board notified; the worker
    /// must now wait for the epoch to advance.
    BarrierReported,
    /// Waiting for a barrier epoch to be released (poll again).
    Blocked(u64),
    /// Nothing to do right now.
    Idle,
    /// Queue closed and backlog empty: the worker is done.
    Disconnected,
    /// The crash switch tripped: the node is dead. Unsettled work stays
    /// in the WAL for the next launch's recovery replay.
    Crashed,
}

/// Recent-message dedup window per worker. Duplicates only arise from
/// scripted duplicate delivery and are adjacent in FIFO order, so a
/// small window suffices.
const SEEN_WINDOW: usize = 64;

/// One op awaiting resubmission.
struct RetryEntry {
    msg: QueueMsg,
    attempts: u32,
    /// A previous attempt failed with a transient backend error. The op
    /// may have applied server-side with the reply lost, so a later
    /// `AlreadyExists` on a creation is idempotent success, not a
    /// conflict to retry.
    backend_faulted: bool,
}

pub struct CommitWorker {
    node: NodeId,
    consumer: Consumer<QueueMsg>,
    dfs: DfsClient,
    cache: MetaCache,
    core: Arc<RegionCore>,
    /// Ops awaiting resubmission.
    retry: VecDeque<RetryEntry>,
    /// Barrier epoch we reported and are stalled on.
    waiting: Option<u64>,
    /// Marker seen but backlog not yet flushed.
    flushing_for: Option<u64>,
    /// Consecutive retry-backlog failures with no fresh input; once a full
    /// cycle passes without progress the worker reports `Idle` instead of
    /// spinning (the missing prerequisite lives in another queue).
    stuck_retries: usize,
    /// `(client, timestamp)` of the most recent messages, for dropping
    /// duplicated deliveries (lossy-link fault plane).
    seen: VecDeque<(u32, u64)>,
}

impl CommitWorker {
    pub fn new(
        node: NodeId,
        consumer: Consumer<QueueMsg>,
        dfs: DfsClient,
        core: Arc<RegionCore>,
    ) -> Self {
        let cache = MetaCache::new(core.cache_cluster.client(node));
        Self {
            node,
            consumer,
            dfs,
            cache,
            core,
            retry: VecDeque::new(),
            waiting: None,
            flushing_for: None,
            stuck_retries: 0,
            seen: VecDeque::new(),
        }
    }

    /// Has this exact message already been consumed? Region timestamps
    /// are unique per message (`RegionCore::now` ticks on every build),
    /// so `(client, timestamp)` identifies a delivery exactly; a repeat
    /// within the window is a duplicated send. The publisher counted the
    /// op once, so the duplicate must be dropped without settling.
    fn is_duplicate(&mut self, msg: &QueueMsg) -> bool {
        let key = (msg.client, msg.timestamp);
        if self.seen.contains(&key) {
            return true;
        }
        if self.seen.len() == SEEN_WINDOW {
            self.seen.pop_front();
        }
        self.seen.push_back(key);
        false
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    /// True when the retry backlog is empty (shutdown condition).
    pub fn backlog_empty(&self) -> bool {
        self.retry.is_empty()
    }

    fn charge_dispatch(&self) {
        charge(
            Station::CommitProc(self.core.config.station_base + self.node.0),
            self.core.config_commit_dispatch(),
        );
    }

    /// Handle one unit of work. Never blocks.
    pub fn step(&mut self) -> WorkerStep {
        // A tripped crash switch means this node is dead: no further
        // progress, no settling — recovery owns whatever is in the log.
        if self.core.crash.tripped() {
            return WorkerStep::Crashed;
        }

        // Stalled at a barrier: resume only when released.
        if let Some(epoch) = self.waiting {
            if self.core.board.is_released(epoch) {
                self.waiting = None;
            } else {
                return WorkerStep::Blocked(epoch);
            }
        }

        // A marker was consumed: flush the retry backlog, then report.
        if let Some(epoch) = self.flushing_for {
            if let Some(e) = self.retry.pop_front() {
                return self.apply(e.msg, e.attempts, e.backend_faulted);
            }
            self.flushing_for = None;
            self.core.board.worker_reached(epoch);
            self.waiting = Some(epoch);
            return WorkerStep::BarrierReported;
        }

        // Fresh messages first; fall back to the publish buffer, then the
        // retry backlog.
        match self.consumer.try_recv() {
            Ok(msg) => {
                if self.is_duplicate(&msg) {
                    self.core.counters.incr("duplicate_drops");
                    return WorkerStep::Retried;
                }
                self.stuck_retries = 0;
                self.charge_dispatch();
                match msg.op {
                    CommitOp::Barrier { epoch } => {
                        self.flushing_for = Some(epoch);
                        // Re-enter immediately on the next step to flush.
                        WorkerStep::Retried
                    }
                    CommitOp::Batch(inner) => self.apply_batch(inner),
                    _ => self.apply(msg, 0, false),
                }
            }
            Err(TryRecvError::Empty) => match self.pull_publish_buffer() {
                Some(step) => step,
                None => self.step_retry(WorkerStep::Idle),
            },
            Err(TryRecvError::Disconnected) => match self.pull_publish_buffer() {
                Some(step) => step,
                None => self.step_retry(WorkerStep::Disconnected),
            },
        }
    }

    /// The queue is empty: drain whatever accumulated in this node's
    /// publish buffer below the flush threshold. Queue-empty means every
    /// earlier message was consumed, so buffered ops are the newest and
    /// applying them directly preserves per-node FIFO order.
    fn pull_publish_buffer(&mut self) -> Option<WorkerStep> {
        if self.core.config.commit_batch_size <= 1 {
            return None;
        }
        let batch = self.core.publish_bufs[self.node.0 as usize].lock().take_all();
        if batch.is_empty() {
            return None;
        }
        self.stuck_retries = 0;
        self.charge_dispatch();
        if batch.len() == 1 {
            let msg = batch.into_iter().next().expect("len checked");
            Some(self.apply(msg, 0, false))
        } else {
            self.core.counters.incr("batches_flushed");
            self.core.counters.add("batched_ops", batch.len() as u64);
            Some(self.apply_batch(batch))
        }
    }

    /// Work the retry backlog with no fresh input. After one full cycle of
    /// failures, report `empty_step` so the caller can sleep — the
    /// prerequisite commit must come from another queue.
    fn step_retry(&mut self, empty_step: WorkerStep) -> WorkerStep {
        if self.retry.is_empty() {
            return empty_step;
        }
        if self.stuck_retries >= self.retry.len() {
            self.stuck_retries = 0;
            return empty_step;
        }
        let e = self.retry.pop_front().expect("checked non-empty");
        match self.apply(e.msg, e.attempts, e.backend_faulted) {
            WorkerStep::Retried => {
                self.stuck_retries += 1;
                WorkerStep::Retried
            }
            other => {
                self.stuck_retries = 0;
                other
            }
        }
    }

    /// Should a failed creation be discarded because its directory was
    /// removed by a barrier commit at or after the op's epoch?
    fn under_removed_dir(&self, path: &str, op_epoch: u64) -> bool {
        let removed = self.core.removed_dirs.read();
        removed
            .iter()
            .any(|(dir, epoch)| op_epoch <= *epoch && fspath::is_same_or_ancestor(dir, path))
    }

    /// Commit one batched message: namespace ops go through a single
    /// batched DFS RPC (in publish order), inline-data writebacks follow
    /// individually on the data path. Writebacks read the *current*
    /// primary copy at commit time, so settling them after the batch's
    /// namespace ops cannot regress any data. Each op settles
    /// independently; failures disaggregate into single-op retries.
    fn apply_batch(&mut self, inner: Vec<QueueMsg>) -> WorkerStep {
        let cred = self.core.config.cred;
        let mut ns_msgs = Vec::with_capacity(inner.len());
        let mut wb_msgs = Vec::new();
        for msg in inner {
            match &msg.op {
                CommitOp::WriteInline { .. } => wb_msgs.push(msg),
                CommitOp::Barrier { .. } | CommitOp::Batch(_) => {
                    unreachable!("markers and batches are never batched")
                }
                _ => ns_msgs.push(msg),
            }
        }

        let mut committed = 0u32;
        let mut retried = 0u32;
        let mut discarded = 0u32;
        let mut tally = |step: WorkerStep| match step {
            WorkerStep::Committed => committed += 1,
            WorkerStep::Retried => retried += 1,
            WorkerStep::Discarded => discarded += 1,
            other => unreachable!("settle yields commit/retry/discard, got {other:?}"),
        };

        if !ns_msgs.is_empty() {
            let ops: Vec<BatchOp> = ns_msgs
                .iter()
                .map(|m| match &m.op {
                    CommitOp::Mkdir { path, mode } => {
                        BatchOp::Mkdir { path: path.clone(), mode: *mode }
                    }
                    CommitOp::Create { path, mode } => {
                        BatchOp::Create { path: path.clone(), mode: *mode }
                    }
                    CommitOp::Unlink { path } => BatchOp::Unlink { path: path.clone() },
                    _ => unreachable!("partitioned above"),
                })
                .collect();
            let results = if self.core.durable() {
                let ids: Vec<dfs::OpId> = ns_msgs.iter().map(|m| m.id).collect();
                self.dfs.apply_batch_idempotent(&ops, &ids, &cred)
            } else {
                self.dfs.apply_batch(&ops, &cred)
            };
            // Crash window: the DFS applied the batch but nothing has
            // settled. Recovery must re-drive these ops idempotently.
            if self.core.crash.hit(CrashPoint::MidBatch) {
                return WorkerStep::Crashed;
            }
            for (msg, res) in ns_msgs.into_iter().zip(results) {
                tally(self.settle(msg, 0, false, res));
            }
        }
        for msg in wb_msgs {
            let res = self.execute(&msg);
            if self.core.crash.hit(CrashPoint::MidBatch) {
                return WorkerStep::Crashed;
            }
            tally(self.settle(msg, 0, false, res));
        }
        self.core.maybe_truncate_wals();
        WorkerStep::Batch { committed, retried, discarded }
    }

    fn apply(&mut self, msg: QueueMsg, attempts: u32, backend_faulted: bool) -> WorkerStep {
        let result = self.execute(&msg);
        // Same window as the batched path: applied on the DFS, unsettled.
        if self.core.crash.hit(CrashPoint::MidBatch) {
            return WorkerStep::Crashed;
        }
        let step = self.settle(msg, attempts, backend_faulted, result);
        self.core.maybe_truncate_wals();
        step
    }

    /// Run one single operation against the DFS. Ops carrying a replay
    /// identity (durable mode) go through the idempotent MDS entry point
    /// so a post-crash replay of an already-applied op is a no-op.
    fn execute(&mut self, msg: &QueueMsg) -> FsResult<()> {
        let cred = self.core.config.cred;
        let id = msg.id;
        match &msg.op {
            CommitOp::Mkdir { path, mode } => {
                self.apply_ns(BatchOp::Mkdir { path: path.clone(), mode: *mode }, id)
            }
            CommitOp::Create { path, mode } => {
                self.apply_ns(BatchOp::Create { path: path.clone(), mode: *mode }, id)
            }
            CommitOp::Unlink { path } => {
                self.apply_ns(BatchOp::Unlink { path: path.clone() }, id)
            }
            CommitOp::WriteInline { path } => {
                // Release the coalescing slot *before* reading the primary
                // copy: a write racing in after our read re-queues a fresh
                // writeback instead of being silently absorbed.
                self.core.pending_writebacks.lock().remove(path.as_str());
                match self.cache.try_get(path) {
                    // Freshest primary copy wins; a record that vanished,
                    // was marked removed, or went large needs no inline
                    // writeback.
                    Ok(Some((meta, _))) if !meta.removed && !meta.large => {
                        if id.is_none() {
                            self.dfs.write(path, &cred, 0, &meta.inline).map(|_| ())
                        } else {
                            self.dfs
                                .write_idempotent(path, &cred, &meta.inline, id)
                                .map(|_| ())
                        }
                    }
                    Ok(_) => {
                        self.core.counters.incr("writeback_skipped");
                        Ok(())
                    }
                    // Cache node down: retriable through the backlog.
                    // After the node restarts the wiped record reads as
                    // gone and the writeback settles as skipped.
                    Err(_) => Err(FsError::Backend("cache node down".into())),
                }
            }
            CommitOp::Barrier { .. } | CommitOp::Batch(_) => {
                unreachable!("barriers and batches handled in step()")
            }
        }
    }

    /// One namespace op on the DFS, identified when durable.
    fn apply_ns(&self, op: BatchOp, id: dfs::OpId) -> FsResult<()> {
        let cred = self.core.config.cred;
        if id.is_none() {
            return match op {
                BatchOp::Mkdir { path, mode } => self.dfs.mkdir(&path, &cred, mode),
                BatchOp::Create { path, mode } => self.dfs.create(&path, &cred, mode),
                BatchOp::Unlink { path } => self.dfs.unlink(&path, &cred),
            };
        }
        self.dfs
            .apply_batch_idempotent(&[op], &[id], &cred)
            .pop()
            .unwrap_or(Err(FsError::Backend("empty batch reply".into())))
    }

    /// Book the outcome of one single operation's commit attempt.
    fn settle(
        &mut self,
        msg: QueueMsg,
        attempts: u32,
        backend_faulted: bool,
        result: FsResult<()>,
    ) -> WorkerStep {
        match result {
            Ok(()) => {
                // Birth bookkeeping feeds the duplicate-admission check
                // below: the path's committed incarnation is now the one
                // this op made (or removed).
                if let Some(path) = msg.op.path() {
                    if msg.op.is_creation() {
                        self.core.note_birth(path, msg.timestamp);
                    } else if matches!(msg.op, CommitOp::Unlink { .. }) {
                        self.core.clear_birth(path);
                    }
                }
                self.retire(&msg);
                self.after_success(&msg);
                self.core.note_completed();
                self.core.counters.incr("committed");
                WorkerStep::Committed
            }
            // A replayed creation that already failed with a transient
            // backend error may have applied server-side with its reply
            // lost; the DFS entry it "conflicts" with is its own. Treat
            // the replay as success instead of burning retry budget.
            Err(FsError::AlreadyExists)
                if backend_faulted && attempts > 0 && msg.op.is_creation() =>
            {
                self.retire(&msg);
                self.after_success(&msg);
                self.core.note_completed();
                self.core.counters.incr("committed");
                self.core.counters.incr("idempotent_replays");
                WorkerStep::Committed
            }
            // A duplicate admission: the path's committed file is *older*
            // than this creation and no acknowledged unlink separates
            // them, so the path was already created when this op was
            // acknowledged — its admission check saw a cold or
            // unreachable cache (degraded windows, post-crash cold
            // shards). `AlreadyExists` means its outcome is in place
            // (create-if-absent semantics). It must NOT sit in the
            // backlog waiting for the path to free up — committing the
            // duplicate after a later acknowledged unlink would resurrect
            // the file. Both other causes of the conflict fall through to
            // the retry backlog and resolve there: a *pending* unlink
            // between the birth and this creation (a legitimate
            // re-creation waiting for its predecessor's removal) and a
            // committed file *newer* than the creation (a cross-queue
            // race — the blocking file will be removed by an acknowledged
            // unlink).
            Err(FsError::AlreadyExists)
                if msg.op.is_creation() && {
                    let p = msg.op.path().expect("creations have a path");
                    match self.core.birth_of(p) {
                        Some(b) => {
                            b < msg.timestamp
                                && !self.core.unlink_pending_between(p, b, msg.timestamp)
                        }
                        // No tracked birth: the blocking file never
                        // committed through this region. Only a degraded
                        // admission treats that as its own duplicate.
                        None => msg.degraded,
                    }
                } =>
            {
                self.retire(&msg);
                self.after_success(&msg);
                self.core.note_completed();
                self.core.counters.incr("committed");
                self.core.counters.incr("degraded_idempotent");
                WorkerStep::Committed
            }
            // Namespace-convention rejections (resubmit until the missing
            // prerequisite commit arrives — independent commit) and
            // transient backend faults (MDS outage / RPC timeout: retry
            // the same way, bounded by the retry budget).
            Err(
                e @ (FsError::NotFound
                | FsError::AlreadyExists
                | FsError::NotEmpty
                | FsError::Backend(_)),
            ) => {
                if let Some(path) = msg.op.path() {
                    if self.under_removed_dir(path, msg.epoch) {
                        self.retire(&msg);
                        self.core.note_completed();
                        self.core.counters.incr("discarded_removed_dir");
                        return WorkerStep::Discarded;
                    }
                }
                if attempts + 1 >= self.core.config.max_commit_retries {
                    self.retire(&msg);
                    self.core.note_completed();
                    self.core.counters.incr("dropped_retry_budget");
                    return WorkerStep::Discarded;
                }
                self.core.counters.incr("resubmitted");
                self.retry.push_back(RetryEntry {
                    msg,
                    attempts: attempts + 1,
                    backend_faulted: backend_faulted || matches!(e, FsError::Backend(_)),
                });
                WorkerStep::Retried
            }
            Err(_) => {
                // Permission or backend error: not retriable; count and
                // surface through counters (the primary copy stays).
                self.retire(&msg);
                self.core.note_completed();
                self.core.counters.incr("commit_errors");
                WorkerStep::Discarded
            }
        }
    }

    /// Release the pending-removal mark once an unlink settles for good
    /// (committed or discarded). Must run *before* `after_success` so the
    /// deferred cache deletion sees the post-retirement count.
    fn retire(&self, msg: &QueueMsg) {
        if let CommitOp::Unlink { path } = &msg.op {
            self.core.note_unlink_retired(path, msg.timestamp);
        }
    }

    /// Post-commit bookkeeping on the primary copy.
    fn after_success(&mut self, msg: &QueueMsg) {
        let cred = self.core.config.cred;
        match &msg.op {
            CommitOp::Mkdir { path, .. } | CommitOp::Create { path, .. } => {
                // Backup copy now exists: mark the cached record
                // committed. Best-effort — a crashed shard's record is
                // wiped anyway and rewarms as committed from the DFS.
                let _ = self.cache.try_update::<()>(path, |m| {
                    m.committed = true;
                    Ok(())
                });
                // Write back any data staged while the file did not exist
                // on the DFS yet (Section III.D-2).
                let staged = self.core.staging.lock().remove(path.as_str());
                if let Some(data) = staged {
                    if self.dfs.write(path, &cred, 0, &data).is_ok() {
                        self.core.counters.incr("staged_writebacks");
                    } else {
                        self.core.counters.incr("staged_writeback_errors");
                    }
                }
            }
            CommitOp::Unlink { path } => {
                // Deferred cache deletion: drop the record only if it is
                // still the marked-removed version (a re-create must
                // survive) and no *later* unlink of the same path is still
                // queued — the removed-mark we would delete is that
                // unlink's tombstone, and dropping it lets the read path
                // resurrect the record from the not-yet-updated backup
                // copy. Best-effort under faults, as above.
                if !self.core.unlink_pending(path) {
                    if let Ok(Some((meta, _))) = self.cache.try_get(path) {
                        // A record marked stale is this very unlink's
                        // degraded-mode leftover: it never got its
                        // removed-mark, delete it all the same.
                        if (meta.removed || self.core.is_stale_tombstone(path))
                            && self.cache.try_delete(path).is_ok()
                        {
                            self.core.clear_stale_tombstone(path);
                        }
                    }
                }
                self.core.staging.lock().remove(path.as_str());
            }
            CommitOp::WriteInline { .. } | CommitOp::Barrier { .. } | CommitOp::Batch(_) => {}
        }
    }
}

impl RegionCore {
    pub(crate) fn config_commit_dispatch(&self) -> u64 {
        self.cache_cluster.profile().commit_dispatch
    }
}
