//! Per-node publish buffer for group commit.
//!
//! Clients on one node funnel their operation messages through a shared
//! [`PublishBuffer`] instead of pushing each one into the commit queue
//! directly. The buffer flushes as one [`CommitOp::Batch`] message when
//! it reaches the configured batch size, when a barrier needs the queue
//! flushed, or when the node's commit process pulls it on an empty queue
//! (liveness for quiesce/shutdown without a timer).
//!
//! While ops sit in the buffer they can still annihilate each other:
//!
//! * a buffered `Create{p}` cancels against an incoming `Unlink{p}` —
//!   the file never reaches the DFS at all, and any inline writeback
//!   queued after that create vanishes with it;
//! * an incoming `WriteInline{p}` collapses into a buffered one when no
//!   `Unlink`/`Create` for `p` intervenes (the commit process reads the
//!   *current* primary copy at commit time, so one entry suffices). The
//!   client-side `pending_writebacks` set already coalesces this case
//!   before publish; the buffer-level rule is the backstop that keeps
//!   the invariant local.
//!
//! Coalescing never crosses a flush boundary: once ops leave the buffer
//! their queue order is final, and per-publisher FIFO of the underlying
//! queue does the rest.

use crate::commit::op::{CommitOp, QueueMsg};

/// What happened to a pushed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Buffered {
    /// The message entered the buffer.
    Queued,
    /// An incoming `Unlink` annihilated a buffered `Create` of the same
    /// path (plus the writebacks queued after it). `absorbed` counts the
    /// buffered messages removed; the unlink itself was swallowed too,
    /// so `absorbed + 1` operations complete without touching the queue.
    Cancelled { absorbed: usize },
    /// An incoming `WriteInline` collapsed into a buffered one.
    Collapsed,
}

/// Order-preserving op buffer with pre-queue coalescing.
#[derive(Debug, Default)]
pub struct PublishBuffer {
    ops: Vec<QueueMsg>,
}

impl PublishBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Buffer `msg`, coalescing against buffered ops when allowed.
    /// Barriers and batches must not be pushed — they bypass the buffer.
    pub fn push(&mut self, msg: QueueMsg, coalesce: bool) -> Buffered {
        debug_assert!(
            !matches!(msg.op, CommitOp::Barrier { .. } | CommitOp::Batch(_)),
            "barriers and batches bypass the publish buffer"
        );
        if coalesce {
            match &msg.op {
                CommitOp::Unlink { path } => {
                    if let Some(absorbed) = self.cancel_create(path) {
                        return Buffered::Cancelled { absorbed };
                    }
                }
                CommitOp::WriteInline { path }
                    if self.collapses_into_buffered_writeback(path) =>
                {
                    return Buffered::Collapsed;
                }
                _ => {}
            }
        }
        self.ops.push(msg);
        Buffered::Queued
    }

    /// Drain the buffer in publish order.
    pub fn take_all(&mut self) -> Vec<QueueMsg> {
        std::mem::take(&mut self.ops)
    }

    /// Annihilate the most recent buffered `Create{path}` together with
    /// every `WriteInline{path}` queued after it (they belong to the
    /// cancelled incarnation of the file). Returns how many buffered
    /// messages were removed, or `None` when no create is buffered —
    /// the unlink must then queue normally behind the committed create.
    fn cancel_create(&mut self, path: &str) -> Option<usize> {
        let create_idx = self.ops.iter().rposition(
            |m| matches!(&m.op, CommitOp::Create { path: p, .. } if p == path),
        )?;
        let before = self.ops.len();
        let mut idx = 0;
        self.ops.retain(|m| {
            let keep = match &m.op {
                _ if idx == create_idx => false,
                CommitOp::WriteInline { path: p } => idx < create_idx || p != path,
                _ => true,
            };
            idx += 1;
            keep
        });
        Some(before - self.ops.len())
    }

    /// Safe to collapse only when the *last* buffered op for `path` is a
    /// writeback: an intervening `Unlink`/`Create` means the buffered
    /// writeback belongs to the previous incarnation of the file and a
    /// fresh entry must queue behind the re-creation.
    fn collapses_into_buffered_writeback(&self, path: &str) -> bool {
        self.ops
            .iter()
            .rev()
            .find_map(|m| match &m.op {
                CommitOp::WriteInline { path: p } if p == path => Some(true),
                other if other.path() == Some(path) => Some(false),
                _ => None,
            })
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(op: CommitOp) -> QueueMsg {
        QueueMsg { id: Default::default(), op, client: 0, epoch: 0, timestamp: 0, degraded: false }
    }

    fn create(p: &str) -> QueueMsg {
        msg(CommitOp::Create { path: p.into(), mode: 0o644 })
    }

    fn mkdir(p: &str) -> QueueMsg {
        msg(CommitOp::Mkdir { path: p.into(), mode: 0o755 })
    }

    fn unlink(p: &str) -> QueueMsg {
        msg(CommitOp::Unlink { path: p.into() })
    }

    fn wi(p: &str) -> QueueMsg {
        msg(CommitOp::WriteInline { path: p.into() })
    }

    #[test]
    fn create_then_unlink_annihilate() {
        let mut b = PublishBuffer::new();
        assert_eq!(b.push(create("/f"), true), Buffered::Queued);
        assert_eq!(b.push(unlink("/f"), true), Buffered::Cancelled { absorbed: 1 });
        assert!(b.is_empty());
    }

    #[test]
    fn cancel_absorbs_trailing_writeback_only() {
        let mut b = PublishBuffer::new();
        b.push(wi("/f"), true); // previous incarnation, already unlinked below
        b.push(unlink("/f"), true);
        b.push(create("/f"), true);
        b.push(wi("/f"), true);
        b.push(create("/g"), true);
        assert_eq!(b.push(unlink("/f"), true), Buffered::Cancelled { absorbed: 2 });
        let rest: Vec<_> = b.take_all();
        assert_eq!(rest.len(), 3);
        assert!(matches!(&rest[0].op, CommitOp::WriteInline { path } if path == "/f"));
        assert!(matches!(&rest[1].op, CommitOp::Unlink { path } if path == "/f"));
        assert!(matches!(&rest[2].op, CommitOp::Create { path, .. } if path == "/g"));
    }

    #[test]
    fn unlink_without_buffered_create_queues() {
        let mut b = PublishBuffer::new();
        b.push(wi("/f"), true);
        assert_eq!(b.push(unlink("/f"), true), Buffered::Queued);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn mkdir_never_cancels_against_unlink() {
        // Unlink of a directory is rejected client-side; a same-path
        // mkdir must not be annihilated by an unrelated unlink message.
        let mut b = PublishBuffer::new();
        b.push(mkdir("/d"), true);
        assert_eq!(b.push(unlink("/d"), true), Buffered::Queued);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn duplicate_writeback_collapses() {
        let mut b = PublishBuffer::new();
        b.push(create("/f"), true);
        assert_eq!(b.push(wi("/f"), true), Buffered::Queued);
        assert_eq!(b.push(wi("/f"), true), Buffered::Collapsed);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn writeback_after_recreate_does_not_collapse() {
        // [WI, Unlink, Create] + WI: collapsing onto the pre-unlink
        // writeback would lose the re-created file's data.
        let mut b = PublishBuffer::new();
        b.push(wi("/f"), true);
        b.push(unlink("/f"), true);
        b.push(create("/f"), true);
        assert_eq!(b.push(wi("/f"), true), Buffered::Queued);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn coalescing_disabled_buffers_everything() {
        let mut b = PublishBuffer::new();
        b.push(create("/f"), false);
        assert_eq!(b.push(unlink("/f"), false), Buffered::Queued);
        assert_eq!(b.push(wi("/f"), false), Buffered::Queued);
        assert_eq!(b.push(wi("/f"), false), Buffered::Queued);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn take_all_preserves_publish_order() {
        let mut b = PublishBuffer::new();
        b.push(mkdir("/d"), true);
        b.push(create("/d/a"), true);
        b.push(create("/d/b"), true);
        let batch = b.take_all();
        assert!(b.is_empty());
        let paths: Vec<_> = batch.iter().map(|m| m.op.path().unwrap().to_string()).collect();
        assert_eq!(paths, ["/d", "/d/a", "/d/b"]);
    }
}
