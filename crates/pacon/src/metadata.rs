//! Cached metadata records (the primary copy, Section III.A).
//!
//! One record per namespace entry, keyed by full path in the distributed
//! cache. Small files keep their data inline with the metadata so a
//! single KV request serves both (Section III.D-2).

use fsapi::{FileKind, FileStat, Perm};

/// Metadata of one entry as stored in the distributed cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedMeta {
    pub kind: FileKind,
    pub perm: Perm,
    /// Logical file size (may exceed the inline data when the file has
    /// gone large).
    pub size: u64,
    pub mtime: u64,
    /// Backup copy (DFS) reflects this entry's creation.
    pub committed: bool,
    /// Marked removed; awaiting commit before the record is deleted
    /// (Section III.D-1: "removed files are marked and their cached
    /// metadata are deleted after the operations are committed").
    pub removed: bool,
    /// The file outgrew the small-file threshold; data lives on the DFS.
    pub large: bool,
    /// Inline data of small files.
    pub inline: Vec<u8>,
}

impl CachedMeta {
    pub fn new_dir(perm: Perm, mtime: u64) -> Self {
        Self {
            kind: FileKind::Dir,
            perm,
            size: 0,
            mtime,
            committed: false,
            removed: false,
            large: false,
            inline: Vec::new(),
        }
    }

    pub fn new_file(perm: Perm, mtime: u64) -> Self {
        Self {
            kind: FileKind::File,
            perm,
            size: 0,
            mtime,
            committed: false,
            removed: false,
            large: false,
            inline: Vec::new(),
        }
    }

    /// A record for an entry loaded from the DFS (already durable there).
    pub fn from_stat(stat: &FileStat) -> Self {
        Self {
            kind: stat.kind,
            perm: stat.perm,
            size: stat.size,
            mtime: stat.mtime,
            committed: true,
            removed: false,
            // Data loaded from the DFS stays on the DFS.
            large: stat.kind == FileKind::File,
            inline: Vec::new(),
        }
    }

    pub fn to_stat(&self) -> FileStat {
        FileStat {
            kind: self.kind,
            perm: self.perm,
            size: self.size,
            mtime: self.mtime,
            nlink: 1,
        }
    }

    const FLAG_COMMITTED: u8 = 1;
    const FLAG_REMOVED: u8 = 2;
    const FLAG_LARGE: u8 = 4;
    const FLAG_DIR: u8 = 8;

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28 + self.inline.len());
        let mut flags = 0u8;
        if self.committed {
            flags |= Self::FLAG_COMMITTED;
        }
        if self.removed {
            flags |= Self::FLAG_REMOVED;
        }
        if self.large {
            flags |= Self::FLAG_LARGE;
        }
        if self.kind == FileKind::Dir {
            flags |= Self::FLAG_DIR;
        }
        out.push(flags);
        out.extend_from_slice(&self.perm.mode.to_le_bytes());
        out.extend_from_slice(&self.perm.uid.to_le_bytes());
        out.extend_from_slice(&self.perm.gid.to_le_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.mtime.to_le_bytes());
        out.extend_from_slice(&self.inline);
        out
    }

    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 27 {
            return None;
        }
        let flags = bytes[0];
        let mode = u16::from_le_bytes(bytes[1..3].try_into().ok()?);
        let uid = u32::from_le_bytes(bytes[3..7].try_into().ok()?);
        let gid = u32::from_le_bytes(bytes[7..11].try_into().ok()?);
        let size = u64::from_le_bytes(bytes[11..19].try_into().ok()?);
        let mtime = u64::from_le_bytes(bytes[19..27].try_into().ok()?);
        Some(Self {
            kind: if flags & Self::FLAG_DIR != 0 { FileKind::Dir } else { FileKind::File },
            perm: Perm::new(mode, uid, gid),
            size,
            mtime,
            committed: flags & Self::FLAG_COMMITTED != 0,
            removed: flags & Self::FLAG_REMOVED != 0,
            large: flags & Self::FLAG_LARGE != 0,
            inline: bytes[27..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_flag_combinations() {
        for committed in [false, true] {
            for removed in [false, true] {
                for large in [false, true] {
                    for kind in [FileKind::File, FileKind::Dir] {
                        let m = CachedMeta {
                            kind,
                            perm: Perm::new(0o640, 5, 6),
                            size: 123,
                            mtime: 77,
                            committed,
                            removed,
                            large,
                            inline: b"xyz".to_vec(),
                        };
                        assert_eq!(CachedMeta::decode(&m.encode()), Some(m));
                    }
                }
            }
        }
    }

    #[test]
    fn from_stat_marks_committed_and_large() {
        let stat = FileStat {
            kind: FileKind::File,
            perm: Perm::new(0o644, 1, 1),
            size: 9999,
            mtime: 5,
            nlink: 1,
        };
        let m = CachedMeta::from_stat(&stat);
        assert!(m.committed);
        assert!(m.large);
        assert_eq!(m.to_stat().size, 9999);
        let dstat = FileStat {
            kind: FileKind::Dir,
            perm: Perm::new(0o755, 1, 1),
            size: 0,
            mtime: 5,
            nlink: 2,
        };
        assert!(!CachedMeta::from_stat(&dstat).large);
    }

    #[test]
    fn decode_rejects_truncated() {
        assert_eq!(CachedMeta::decode(&[0; 26]), None);
    }
}
