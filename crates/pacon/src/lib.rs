//! `pacon` — Partial Consistency for scalable, efficient DFS metadata.
//!
//! Reproduction of *"Pacon: Improving Scalability and Efficiency of
//! Metadata Service through Partial Consistency"* (Liu, Lu, Chen, Zhao —
//! IPDPS 2020). Pacon is a client-side library layered over an existing
//! DFS. It splits the global namespace into **consistent regions** (one
//! per application workspace):
//!
//! * inside its region, an application sees **strong consistency**
//!   through a distributed in-memory metadata cache (the primary copy)
//!   shared by the application's client nodes;
//! * metadata updates are committed to the underlying DFS (the backup
//!   copy) **asynchronously** through a per-node commit queue, using
//!   *independent commit* for order-free operations (create/mkdir/rm)
//!   and *barrier commit* for order-dependent ones (rmdir/readdir);
//! * requests outside every known region are **redirected** to the DFS
//!   unchanged, so the global namespace and DFS manageability remain;
//! * permission checks use **batch permission management**: a per-region
//!   normal permission plus a special-permission list, so no path
//!   traversal is ever needed inside a region.
//!
//! Entry points: build a [`PaconRegion`] with [`PaconRegion::launch`],
//! hand out per-process clients with [`PaconRegion::client`], and drive
//! everything through the [`fsapi::FileSystem`] trait.
//!
//! ```
//! use std::sync::Arc;
//! use fsapi::{Credentials, FileSystem};
//! use simnet::{LatencyProfile, Topology};
//!
//! let profile = Arc::new(LatencyProfile::zero());
//! let dfs = dfs::DfsCluster::with_default_config(Arc::clone(&profile));
//! let cred = Credentials::new(1000, 1000);
//! let config = pacon::PaconConfig::new("/app1", Topology::new(2, 2), cred);
//! let region = pacon::PaconRegion::launch(config, &dfs).unwrap();
//! let client = region.client(simnet::ClientId(0));
//! client.mkdir("/app1/out", &cred, 0o755).unwrap();
//! client.create("/app1/out/result.dat", &cred, 0o644).unwrap();
//! assert!(client.stat("/app1/out/result.dat", &cred).unwrap().is_file());
//! region.shutdown().unwrap(); // drains the commit queues
//! assert!(dfs.client().stat("/app1/out/result.dat", &cred).unwrap().is_file());
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod checkpoint;
pub mod client;
pub mod commit;
pub mod config;
pub mod degraded;
pub mod directory;
pub mod eviction;
pub mod metadata;
pub mod permission;
pub mod region;
pub mod report;
pub mod retry;

pub use cache::CacheError;
pub use client::PaconClient;
pub use degraded::{DegradedState, Mode as DegradedMode};
pub use retry::RetryPolicy;
pub use commit::op::{CommitOp, QueueMsg};
pub use config::PaconConfig;
pub use directory::RegionDirectory;
pub use metadata::CachedMeta;
pub use permission::RegionPermissions;
pub use region::{PaconRegion, RegionHandle};
pub use report::RegionReport;
