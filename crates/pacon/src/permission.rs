//! Batch permission management (Section III.C).
//!
//! Instead of traversing every path component and checking each
//! directory's bits (costly in a DFS — Figures 2 and 9), Pacon keeps one
//! *normal* permission for the whole consistent region plus a *special*
//! list of entries with different settings, replicated on every client.
//! A check is then a local match: first the special list, then the
//! normal permission — no network, no traversal.

use fsapi::{path as fspath, Credentials, Perm};

/// Predefined permissions of one consistent region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPermissions {
    /// Applies to most files/directories in the region.
    pub normal: Perm,
    /// `(path, perm)` overrides. A special entry applies to the entry
    /// itself and (for directories) everything beneath it; the innermost
    /// match wins.
    pub special: Vec<(String, Perm)>,
}

impl RegionPermissions {
    /// The default policy when an application predefines nothing: every
    /// entry in the workspace is readable, writable and executable by the
    /// creating user (the paper's "default permission settings similar to
    /// Linux").
    pub fn default_for(cred: Credentials) -> Self {
        Self { normal: Perm::new(0o700, cred.uid, cred.gid), special: Vec::new() }
    }

    /// Region-wide policy with explicit normal bits.
    pub fn uniform(mode: u16, cred: Credentials) -> Self {
        Self { normal: Perm::new(mode, cred.uid, cred.gid), special: Vec::new() }
    }

    /// Add a special-permission entry.
    pub fn with_special(mut self, path: &str, perm: Perm) -> Self {
        self.special.push((path.to_string(), perm));
        self
    }

    /// Effective permission for `path`: innermost special match, else the
    /// normal permission.
    pub fn perm_for(&self, path: &str) -> Perm {
        let mut best: Option<(usize, Perm)> = None;
        for (sp, perm) in &self.special {
            if fspath::is_same_or_ancestor(sp, path) {
                let depth = fspath::depth(sp);
                if best.map(|(d, _)| depth > d).unwrap_or(true) {
                    best = Some((depth, *perm));
                }
            }
        }
        best.map(|(_, p)| p).unwrap_or(self.normal)
    }

    /// Local permission check (`want` = ACCESS_* bitmask). This is the
    /// whole of Pacon's permission authentication — a memory lookup.
    pub fn check(&self, path: &str, cred: &Credentials, want: u8) -> bool {
        self.perm_for(path).allows(cred, want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsapi::types::{ACCESS_R, ACCESS_W, ACCESS_X};

    #[test]
    fn default_policy_grants_creator_everything() {
        let cred = Credentials::new(42, 42);
        let p = RegionPermissions::default_for(cred);
        assert!(p.check("/app/any/deep/path", &cred, ACCESS_R | ACCESS_W | ACCESS_X));
        let other = Credentials::new(43, 43);
        assert!(!p.check("/app/any", &other, ACCESS_R));
    }

    #[test]
    fn special_entries_override_normal() {
        let cred = Credentials::new(1, 1);
        let p = RegionPermissions::uniform(0o700, cred)
            .with_special("/app/shared", Perm::new(0o755, 1, 1));
        let stranger = Credentials::new(2, 2);
        assert!(!p.check("/app/private/f", &stranger, ACCESS_R));
        assert!(p.check("/app/shared", &stranger, ACCESS_R));
        assert!(p.check("/app/shared/sub/file", &stranger, ACCESS_R));
        assert!(!p.check("/app/shared/sub/file", &stranger, ACCESS_W));
    }

    #[test]
    fn innermost_special_match_wins() {
        let cred = Credentials::new(1, 1);
        let p = RegionPermissions::uniform(0o700, cred)
            .with_special("/app/a", Perm::new(0o755, 1, 1))
            .with_special("/app/a/locked", Perm::new(0o700, 1, 1));
        let stranger = Credentials::new(2, 2);
        assert!(p.check("/app/a/open", &stranger, ACCESS_R));
        assert!(!p.check("/app/a/locked/f", &stranger, ACCESS_R));
    }

    #[test]
    fn perm_for_exact_and_descendant() {
        let cred = Credentials::new(1, 1);
        let special = Perm::new(0o444, 9, 9);
        let p = RegionPermissions::uniform(0o700, cred).with_special("/w/ro", special);
        assert_eq!(p.perm_for("/w/ro"), special);
        assert_eq!(p.perm_for("/w/ro/x"), special);
        assert_eq!(p.perm_for("/w/rw"), p.normal);
        // Sibling with a shared name prefix must not match.
        assert_eq!(p.perm_for("/w/rox"), p.normal);
    }
}
