//! Consistent regions (Section III.A) and their runtime.
//!
//! A [`PaconRegion`] owns everything Pacon launches with an application:
//! the distributed metadata cache (one shard per node), the per-node
//! commit queues and commit processes, the barrier board, and the batch
//! permission table. Clients are handed out per process and share the
//! region through an `Arc<RegionCore>`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use dfs::DfsCluster;
use fsapi::{path as fspath, FsError, FsResult};
use fsapi::FileSystem;
use memkv::KvCluster;
use mq::{push_pull, Consumer, Publisher};
use simnet::{ClientId, Counters, NodeId};
use syncguard::{level, Mutex, RwLock};

use crate::client::PaconClient;
use crate::commit::barrier::BarrierBoard;
use crate::commit::op::{CommitOp, QueueMsg};
use crate::commit::publish::PublishBuffer;
use crate::commit::wal::{CommitWal, CrashPoint, CrashSwitch, WalEntry};
use crate::commit::worker::{CommitWorker, WorkerStep};
use crate::config::PaconConfig;
use crate::permission::RegionPermissions;

/// State shared by every client and commit process of one region.
pub struct RegionCore {
    /// Normalized workspace root.
    pub root: String,
    pub config: PaconConfig,
    pub perms: RegionPermissions,
    /// The distributed metadata cache.
    pub cache_cluster: Arc<KvCluster>,
    /// Barrier rendezvous (one commit process per node).
    pub board: BarrierBoard,
    /// Directories removed by barrier commits: `(path, epoch at removal)`.
    /// Creations under them from earlier epochs are discarded.
    pub removed_dirs: RwLock<Vec<(String, u64)>>,
    /// Durable staging area for data whose target file is not yet created
    /// on the DFS (the paper's direct-I/O "cache files", Section III.D-2).
    pub staging: Mutex<HashMap<String, Vec<u8>>>,
    /// Paths with an inline-data writeback already queued. Since the
    /// commit process reads the *current* primary copy at commit time,
    /// one queued writeback covers every earlier write to the file —
    /// repeated small-file writes coalesce instead of flooding the queue.
    pub pending_writebacks: Mutex<std::collections::HashSet<String>>,
    /// Acknowledged-but-uncommitted unlinks per path, by publish
    /// timestamp (a multiset: each published `CommitOp::Unlink` holds one
    /// entry until it settles). Three consumers: the commit worker defers
    /// the cache-record deletion while a *newer* unlink is still pending
    /// (deleting would drop that unlink's removed-mark), the read path
    /// refuses to resurrect the record from the DFS backup (which still
    /// holds the file until the pending unlink commits), and the
    /// duplicate-admission check uses the timestamps to tell a legitimate
    /// re-creation (an unlink acknowledged between the blocking file's
    /// birth and the creation) from a duplicate.
    pub(crate) pending_removals: Mutex<HashMap<String, Vec<u64>>>,
    /// Paths whose cache record may be a stale survivor of a
    /// degraded-mode unlink: the removal was acknowledged against the
    /// backup view while the record's shard was unreachable, so a record
    /// that outlives the outage still reads `removed = false`. Hits on
    /// marked paths are deleted instead of served (lazy cleanup in
    /// `MetaCache::try_get` plus the commit worker's settle).
    pub(crate) stale_tombstones: Mutex<std::collections::HashSet<String>>,
    /// Logical timestamp of the last *committed* creation per live path
    /// (cleared when an unlink commits). Lets the commit worker tell a
    /// duplicate admission from a genuine ordering conflict when a
    /// creation hits `AlreadyExists`: a committed file *older* than the
    /// failing creation means the path was already acknowledged-created
    /// when this op was admitted (the admission check saw a cold or
    /// unreachable cache) — retrying would resurrect it after a later
    /// unlink. A *newer* committed file is a cross-queue race the retry
    /// backlog resolves.
    pub(crate) committed_births: Mutex<HashMap<String, u64>>,
    /// Group commit: one publish buffer per node, coalescing ops before
    /// they enter the commit queue. Unused (always empty) when
    /// `commit_batch_size <= 1`.
    pub publish_bufs: Vec<Mutex<PublishBuffer>>,
    pub counters: Counters,
    /// Operations published to the commit queues (barrier markers not
    /// counted).
    pub enqueued: AtomicU64,
    /// Operations fully handled by commit processes (committed, discarded
    /// or dropped).
    pub completed: AtomicU64,
    clock: AtomicU64,
    /// Round-robin pointer of the eviction policy (Section III.F).
    pub evict_cursor: AtomicUsize,
    /// Durable commit logs, one per node. Empty in volatile mode — the
    /// cheap `wals.is_empty()` check is the durability switch on every
    /// hot path.
    pub wals: Vec<CommitWal>,
    /// Deterministic kill trigger for the crash-recovery harness. Never
    /// armed in production; two relaxed atomic loads when idle.
    pub crash: CrashSwitch,
    /// This launch's incarnation (from the WAL directory's counter file;
    /// 0 in volatile mode). High bits of every `write_id`.
    pub incarnation: u64,
    /// Region-wide mutation sequence (low bits of `write_id`).
    write_seq: AtomicU64,
    /// Durable mode: latest namespace generation per path, so writeback
    /// identities can be ordered against re-creations during replay.
    pub(crate) generations: Mutex<HashMap<String, u64>>,
    /// Virtual-ns clock of the fault plane. Backoff "sleeps" and the
    /// chaos driver advance it; degraded windows are measured on it.
    /// Distinct from `clock`, whose ticks are per-event identities.
    sim_ns: AtomicU64,
    /// Degraded-mode state machine (Healthy → Degraded → Rewarming).
    pub degraded: crate::degraded::DegradedState,
}

impl RegionCore {
    /// Monotonic logical timestamp.
    pub fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current virtual time (fault plane), in ns.
    pub fn sim_ns(&self) -> u64 {
        self.sim_ns.load(Ordering::Relaxed)
    }

    /// Advance the virtual clock by `ns` (a backoff "sleep" or a chaos
    /// driver step); returns the new time. No wall time passes.
    pub fn advance(&self, ns: u64) -> u64 {
        self.sim_ns.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Is `path` inside this consistent region?
    pub fn contains(&self, path: &str) -> bool {
        fspath::is_same_or_ancestor(&self.root, path)
    }

    pub fn note_enqueued(&self) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// True when every published operation has been handled.
    pub fn drained(&self) -> bool {
        self.enqueued.load(Ordering::Acquire) == self.completed.load(Ordering::Acquire)
    }

    /// Whether this region journals its commit queue.
    pub fn durable(&self) -> bool {
        !self.wals.is_empty()
    }

    /// An unlink for `path`, publish-stamped `ts`, was acknowledged and
    /// is about to be (or has just been) published.
    pub(crate) fn note_unlink_pending(&self, path: &str, ts: u64) {
        self.pending_removals.lock().entry(path.to_string()).or_default().push(ts);
    }

    /// The published unlink stamped `ts` settled (committed, discarded or
    /// dropped) — or its publish failed and the pending mark rolls back.
    pub(crate) fn note_unlink_retired(&self, path: &str, ts: u64) {
        let mut pending = self.pending_removals.lock();
        if let Some(v) = pending.get_mut(path) {
            if let Some(i) = v.iter().position(|&t| t == ts) {
                v.swap_remove(i);
            }
            if v.is_empty() {
                pending.remove(path);
            }
        }
    }

    /// Does `path` have an acknowledged unlink still in the commit queue?
    /// While it does, the DFS backup may still hold the file, but program
    /// order says it is gone — reads must not resurrect it.
    pub(crate) fn unlink_pending(&self, path: &str) -> bool {
        self.pending_removals.lock().contains_key(path)
    }

    /// Is an unlink with publish timestamp strictly inside
    /// `(after, before)` still pending for `path`? Distinguishes a
    /// legitimate re-creation (its predecessor's removal is acknowledged
    /// but not yet committed — the creation must wait for it) from a
    /// duplicate admission (no removal separates it from the committed
    /// file it collides with).
    pub(crate) fn unlink_pending_between(&self, path: &str, after: u64, before: u64) -> bool {
        self.pending_removals
            .lock()
            .get(path)
            .is_some_and(|v| v.iter().any(|&t| after < t && t < before))
    }

    /// A degraded-mode unlink was acknowledged while `path`'s shard was
    /// unreachable: any surviving cache record is a stale incarnation.
    pub(crate) fn mark_stale_tombstone(&self, path: &str) {
        self.stale_tombstones.lock().insert(path.to_string());
    }

    /// The stale record was deleted (or a fresh authoritative record was
    /// written): hits on `path` are trustworthy again.
    pub(crate) fn clear_stale_tombstone(&self, path: &str) {
        self.stale_tombstones.lock().remove(path);
    }

    pub(crate) fn is_stale_tombstone(&self, path: &str) -> bool {
        self.stale_tombstones.lock().contains(path)
    }

    /// A creation for `path` committed on the DFS at logical time `ts`.
    pub(crate) fn note_birth(&self, path: &str, ts: u64) {
        self.committed_births.lock().insert(path.to_string(), ts);
    }

    /// An unlink for `path` committed: the recorded birth is gone.
    pub(crate) fn clear_birth(&self, path: &str) {
        self.committed_births.lock().remove(path);
    }

    /// Logical timestamp of `path`'s last committed creation, if a
    /// creation committed through this region and no unlink has since.
    pub(crate) fn birth_of(&self, path: &str) -> Option<u64> {
        self.committed_births.lock().get(path).copied()
    }

    /// Allocate the replay identity for an op about to be published.
    /// Creations/unlinks start a new namespace generation for their path;
    /// writebacks inherit the current one. `OpId::NONE` in volatile mode.
    pub(crate) fn op_identity(&self, op: &CommitOp) -> dfs::OpId {
        if self.wals.is_empty() {
            return dfs::OpId::NONE;
        }
        let seq = self.write_seq.fetch_add(1, Ordering::Relaxed) + 1;
        // Panics on a 2^40 per-launch mutation overflow rather than
        // letting seq bleed into the incarnation bits and collide with
        // identities already in the seen-cache.
        let write_id = dfs::OpId::pack_write_id(self.incarnation, seq);
        let generation = match op {
            CommitOp::Mkdir { path, .. }
            | CommitOp::Create { path, .. }
            | CommitOp::Unlink { path } => {
                self.generations.lock().insert(path.clone(), write_id);
                write_id
            }
            CommitOp::WriteInline { path } => {
                self.generations.lock().get(path).copied().unwrap_or(0)
            }
            CommitOp::Barrier { .. } | CommitOp::Batch(_) => 0,
        };
        dfs::OpId { write_id, generation }
    }

    /// Append an identified op to its node's commit log (durable mode;
    /// no-op otherwise). Hosts the harness's two client-side crash
    /// points. Callers must `note_enqueued` *before* appending: that
    /// ordering is what makes `drained()` under the WAL lock prove the
    /// log holds no unconfirmed op (see [`CommitWal::truncate_if`]).
    pub(crate) fn wal_append(
        &self,
        node: usize,
        msg: &QueueMsg,
        snapshot: Option<&[u8]>,
    ) -> FsResult<()> {
        let Some(wal) = self.wals.get(node) else {
            return Ok(());
        };
        if self.crash.hit(CrashPoint::PreAppend) {
            return Err(CrashSwitch::error(CrashPoint::PreAppend));
        }
        let synced = wal.append(msg, snapshot)?;
        self.counters.incr("wal_appended");
        if synced {
            self.counters.incr("wal_fsyncs");
        }
        if self.crash.hit(CrashPoint::PostAppend) {
            return Err(CrashSwitch::error(CrashPoint::PostAppend));
        }
        Ok(())
    }

    /// Truncate every node's commit log if the region is fully drained —
    /// called after completions; two atomic loads when there is still
    /// work in flight. Hosts the post-apply/pre-truncate crash point.
    /// Returns whether every log was truncated by this pass (and is thus
    /// provably empty), which is when replay identities become prunable.
    pub fn maybe_truncate_wals(&self) -> bool {
        if self.wals.is_empty() || !self.drained() {
            return false;
        }
        if self.crash.hit(CrashPoint::PreTruncate) {
            return false;
        }
        let mut all_truncated = true;
        for wal in &self.wals {
            match wal.truncate_if(|| self.drained()) {
                Ok(true) => self.counters.incr("wal_truncations"),
                Ok(false) => all_truncated = false,
                Err(_) => {
                    self.counters.incr("wal_errors");
                    all_truncated = false;
                }
            }
        }
        all_truncated
    }

    /// Unconditionally truncate every commit log (end of a successful
    /// recovery; checkpoint rollback).
    pub(crate) fn reset_wals(&self) -> FsResult<()> {
        for wal in &self.wals {
            wal.reset()?;
            self.counters.incr("wal_truncations");
        }
        Ok(())
    }

    /// Flush node `node`'s publish buffer into its commit queue as one
    /// message. The buffer lock is held across the send so concurrent
    /// publishers on the node cannot reorder around the flush. This is
    /// deadlock-free: the commit process only takes the buffer lock when
    /// its queue is *empty*, so a full queue implies it is draining and
    /// the blocking send resolves.
    pub(crate) fn flush_publish_buffer(
        &self,
        node: usize,
        publisher: &Publisher<QueueMsg>,
    ) -> FsResult<()> {
        let mut buf = self.publish_bufs[node].lock();
        if buf.is_empty() {
            return Ok(());
        }
        let batch = buf.take_all();
        let msg = if batch.len() == 1 {
            batch.into_iter().next().expect("len checked")
        } else {
            self.counters.incr("batches_flushed");
            self.counters.add("batched_ops", batch.len() as u64);
            QueueMsg {
                op: CommitOp::Batch(batch),
                client: u32::MAX,
                epoch: self.board.current_epoch(),
                timestamp: self.now(),
                id: dfs::OpId::NONE,
                degraded: false,
            }
        };
        // permit_blocking: the send blocks while the buffer lock is held by
        // design (see the method doc for the deadlock-freedom argument).
        syncguard::permit_blocking(|| {
            publisher
                .send(msg)
                .map_err(|_| FsError::Backend("commit queue closed".into()))
        })
    }
}

/// Read-only view of a region another application merged in
/// (Section III.D-4).
#[derive(Clone)]
pub struct RegionHandle {
    pub root: String,
    pub cache_cluster: Arc<KvCluster>,
    pub perms: RegionPermissions,
}

/// A running consistent region.
pub struct PaconRegion {
    core: Arc<RegionCore>,
    dfs: Arc<DfsCluster>,
    /// Per-node queue publishers (template; clients clone their node's).
    publishers: Vec<Publisher<QueueMsg>>,
    /// Workers not yet claimed by a thread or the DES driver.
    worker_slots: Mutex<Vec<Option<CommitWorker>>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
    /// Crash simulation: workers bail out immediately, dropping pending
    /// commits (see [`PaconRegion::abort`]).
    hard_stop: Arc<AtomicBool>,
}

impl PaconRegion {
    /// Initialize the region and start one commit-process thread per
    /// node. The workspace directory (and its ancestors) are created on
    /// the DFS if missing.
    pub fn launch(config: PaconConfig, dfs: &Arc<DfsCluster>) -> FsResult<Arc<Self>> {
        let region = Self::launch_paused(config, dfs)?;
        region.start_worker_threads();
        Ok(region)
    }

    /// As [`PaconRegion::launch`] but without spawning worker threads —
    /// the discrete-event harness claims the workers via
    /// [`PaconRegion::take_worker`] and drives them in virtual time.
    pub fn launch_paused(config: PaconConfig, dfs: &Arc<DfsCluster>) -> FsResult<Arc<Self>> {
        let root = fspath::normalize(&config.workspace)?;
        if root == "/" {
            return Err(FsError::InvalidPath(
                "workspace cannot be the filesystem root".into(),
            ));
        }

        // Ensure the workspace exists on the DFS (uncharged setup unless a
        // recorder is active; this happens once at application start).
        let setup = dfs.client();
        let mut prefix = String::new();
        for comp in fspath::components(&root) {
            prefix.push('/');
            prefix.push_str(comp);
            // lint: allow(commit-path, one-time workspace setup at region launch, before any client or worker runs)
            match setup.mkdir(&prefix, &config.cred, 0o777) {
                Ok(()) | Err(FsError::AlreadyExists) => {}
                Err(e) => return Err(e),
            }
        }

        let perms = config
            .permissions
            .clone()
            .unwrap_or_else(|| RegionPermissions::default_for(config.cred));
        let cache_cluster = KvCluster::with_station_base(
            config.topology,
            Arc::clone(dfs.profile()),
            config.station_base,
        );
        let nodes = config.topology.nodes as usize;

        // Durable mode: bump the incarnation, open every node's commit
        // log crash-safely, and collect surviving entries for replay.
        let mut wals = Vec::new();
        let mut recovered: Vec<Vec<WalEntry>> = Vec::new();
        let mut incarnation = 0u64;
        if config.commit_durability {
            let wal_dir = config.wal_dir.clone().ok_or_else(|| {
                FsError::InvalidPath("commit_durability requires wal_dir".into())
            })?;
            std::fs::create_dir_all(&wal_dir)
                .map_err(|e| FsError::Backend(format!("wal dir {}: {e}", wal_dir.display())))?;
            incarnation = bump_incarnation(&wal_dir)?;
            for n in 0..nodes {
                let (wal, entries) = CommitWal::open(
                    &wal_dir.join(format!("node{n}.wal")),
                    config.wal_fsync_batch,
                )?;
                wals.push(wal);
                recovered.push(entries);
            }
        }

        let core = Arc::new(RegionCore {
            root,
            perms,
            cache_cluster,
            board: BarrierBoard::new(nodes),
            removed_dirs: RwLock::new(level::REGION_STATE, "pacon.region.removed_dirs", Vec::new()),
            staging: Mutex::new(level::REGION_STATE, "pacon.region.staging", HashMap::new()),
            pending_writebacks: Mutex::new(
                level::REGION_STATE,
                "pacon.region.pending_writebacks",
                std::collections::HashSet::new(),
            ),
            pending_removals: Mutex::new(
                level::REGION_STATE,
                "pacon.region.pending_removals",
                HashMap::new(),
            ),
            stale_tombstones: Mutex::new(
                level::REGION_STATE,
                "pacon.region.stale_tombstones",
                std::collections::HashSet::new(),
            ),
            committed_births: Mutex::new(
                level::REGION_STATE,
                "pacon.region.committed_births",
                HashMap::new(),
            ),
            publish_bufs: (0..nodes)
                .map(|_| Mutex::new(level::PUBLISH, "pacon.region.publish_buf", PublishBuffer::new()))
                .collect(),
            counters: Counters::new(),
            enqueued: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            evict_cursor: AtomicUsize::new(0),
            wals,
            crash: CrashSwitch::new(),
            incarnation,
            write_seq: AtomicU64::new(0),
            generations: Mutex::new(
                level::REGION_STATE,
                "pacon.region.generations",
                HashMap::new(),
            ),
            sim_ns: AtomicU64::new(0),
            degraded: crate::degraded::DegradedState::new(),
            config,
        });

        // Replay surviving commit-log entries from the previous
        // incarnation before any new work is accepted, then truncate.
        let total_recovered: usize = recovered.iter().map(|v| v.len()).sum();
        if total_recovered > 0 {
            core.counters.add("wal_replayed", total_recovered as u64);
            replay_wal_entries(&core, &setup, recovered)?;
            core.reset_wals()?;
        }
        if core.durable() {
            // Writebacks to files created by earlier incarnations must
            // carry those files' creation generations, not 0: seed the
            // in-memory generation map from the cluster's records before
            // any client publishes.
            let seeded = dfs.replay_generations_under(&core.root);
            if !seeded.is_empty() {
                core.generations.lock().extend(seeded);
            }
            // Every earlier incarnation's log was just replayed (or found
            // empty) and reset, so the identities those logs could replay
            // are confirmed-and-gone: shed them from the seen-cache.
            let pruned = dfs.prune_replay_identities(&core.root, core.incarnation);
            core.counters.add("replay_pruned", pruned as u64);
        }

        let mut publishers = Vec::with_capacity(nodes);
        let mut workers = Vec::with_capacity(nodes);
        for n in 0..nodes as u32 {
            let (tx, rx): (Publisher<QueueMsg>, Consumer<QueueMsg>) =
                push_pull(core.config.commit_queue_capacity);
            publishers.push(tx);
            workers.push(Some(CommitWorker::new(
                NodeId(n),
                rx,
                dfs.client(),
                Arc::clone(&core),
            )));
        }

        Ok(Arc::new(Self {
            core,
            dfs: Arc::clone(dfs),
            publishers,
            worker_slots: Mutex::new(level::REGION_STATE, "pacon.region.worker_slots", workers),
            threads: Mutex::new(level::REGION_STATE, "pacon.region.threads", Vec::new()),
            stop: Arc::new(AtomicBool::new(false)),
            hard_stop: Arc::new(AtomicBool::new(false)),
        }))
    }

    /// Spawn one thread per remaining worker slot.
    pub fn start_worker_threads(&self) {
        // Collect the handles locally so `worker_slots` and `threads`
        // (same lock level) are never held together.
        let mut spawned = Vec::new();
        let mut slots = self.worker_slots.lock();
        for slot in slots.iter_mut() {
            if let Some(mut worker) = slot.take() {
                let stop = Arc::clone(&self.stop);
                let hard_stop = Arc::clone(&self.hard_stop);
                let core = Arc::clone(&self.core);
                spawned.push(std::thread::spawn(move || loop {
                    if hard_stop.load(Ordering::Acquire) {
                        break;
                    }
                    match worker.step() {
                        WorkerStep::Committed
                        | WorkerStep::Batch { .. }
                        | WorkerStep::Retried
                        | WorkerStep::Discarded
                        | WorkerStep::BarrierReported => {}
                        WorkerStep::Blocked(epoch) => core.board.wait_released(epoch),
                        WorkerStep::Idle => {
                            if stop.load(Ordering::Acquire) && worker.backlog_empty() {
                                break;
                            }
                            std::thread::sleep(std::time::Duration::from_micros(100));
                        }
                        WorkerStep::Disconnected | WorkerStep::Crashed => break,
                    }
                }));
            }
        }
        drop(slots);
        self.threads.lock().extend(spawned);
    }

    /// Claim node `n`'s commit worker for external (DES) driving.
    pub fn take_worker(&self, n: usize) -> CommitWorker {
        self.worker_slots.lock()[n]
            .take()
            .expect("worker already claimed or thread-started")
    }

    /// A client for process `id` (determines its node and cache shard
    /// affinity).
    pub fn client(self: &Arc<Self>, id: ClientId) -> PaconClient {
        let node = self.core.config.topology.node_of(id);
        PaconClient::new(
            Arc::clone(&self.core),
            self.core.cache_cluster.client(node),
            self.publishers.clone(),
            self.dfs.client(),
            id,
            node,
        )
    }

    /// Shared core (tests, eviction, checkpoints).
    pub fn core(&self) -> &Arc<RegionCore> {
        &self.core
    }

    /// The DFS this region commits to.
    pub fn dfs(&self) -> &Arc<DfsCluster> {
        &self.dfs
    }

    /// Read-only handle for merging into another application's view.
    pub fn handle(&self) -> RegionHandle {
        RegionHandle {
            root: self.core.root.clone(),
            cache_cluster: Arc::clone(&self.core.cache_cluster),
            perms: self.core.perms.clone(),
        }
    }

    /// Block until every published operation has been committed
    /// (threaded mode only).
    pub fn quiesce(&self) {
        while !self.core.drained() {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    /// Simulate a crash: stop the commit processes immediately, dropping
    /// everything still queued. Uncommitted primary-copy state is lost,
    /// exactly the failure Section III.G's checkpoint/rollback recovers
    /// from.
    pub fn abort(&self) {
        self.hard_stop.store(true, Ordering::Release);
        let mut threads = self.threads.lock();
        for t in threads.drain(..) {
            // lint: allow(hold-across-blocking, abort joins commit threads under `threads`; joined threads never take it)
            let _ = t.join();
        }
    }

    /// Drain the queues and stop the commit threads.
    pub fn shutdown(&self) -> FsResult<()> {
        self.quiesce();
        self.stop.store(true, Ordering::Release);
        let mut threads = self.threads.lock();
        for t in threads.drain(..) {
            // lint: allow(hold-across-blocking, shutdown joins commit threads under `threads`; joined threads never take it)
            t.join().map_err(|_| FsError::Backend("commit thread panicked".into()))?;
        }
        Ok(())
    }

    /// Apply one scripted fault event to the region's subsystems — the
    /// chaos driver's dispatch point. Cache-node events hit the memkv
    /// cluster; commit-link events hit the node's queue.
    pub fn apply_fault(&self, ev: simnet::FaultEvent) {
        use simnet::FaultEvent as E;
        match ev {
            E::CrashCacheNode(n) => self.core.cache_cluster.crash(n),
            E::RestartCacheNode(n) => self.core.cache_cluster.restart(n),
            E::SlowCacheNode { node, extra_ns } => {
                self.core.cache_cluster.set_slowdown(node, extra_ns)
            }
            E::RestoreCacheNode(n) => self.core.cache_cluster.set_slowdown(n, 0),
            E::PartitionCommitLink(n) => self.publishers[n.0 as usize].partition(),
            E::CrashBroker(n) => {
                let lost = self.publishers[n.0 as usize].sever();
                self.core.counters.add("broker_lost_msgs", lost as u64);
            }
            E::HealCommitLink(n) => self.publishers[n.0 as usize].heal(),
            E::DuplicateCommitSends { node, count } => {
                self.publishers[node.0 as usize].arm_duplicates(count)
            }
            E::JoinNode(n) => {
                let _ = self.core.cache_cluster.begin_join(n);
            }
            E::LeaveNode(n) => {
                let _ = self.core.cache_cluster.begin_leave(n);
            }
            E::CrashDuringMigration => {
                // Crash whichever node is mid-join/mid-leave — the
                // worst-case elasticity fault; the cluster resolves the
                // migration deterministically (join aborts, leave
                // force-completes).
                if let Some(n) = self.core.cache_cluster.migrating_node() {
                    self.core.cache_cluster.crash(n);
                }
            }
        }
    }

    /// Drive an in-flight cache-ring migration forward by up to
    /// `max_keys` key transfers — the chaos/reshard driver's per-tick
    /// pump (a real deployment's background transfer thread). No-op when
    /// no migration is active. Returns keys moved this call.
    pub fn pump_reshard(&self, max_keys: usize) -> usize {
        self.core.cache_cluster.migration_step(max_keys)
    }

    /// Is node `n`'s commit link currently down?
    pub fn commit_link_severed(&self, n: usize) -> bool {
        self.publishers[n].is_severed()
    }

    /// Run an empty barrier: returns once every operation published
    /// before this call is committed to the DFS. Used by checkpointing
    /// and by tests that need a consistent backup copy without shutting
    /// the region down.
    pub fn sync_barrier(&self) {
        let guard = self.core.board.start_barrier();
        let epoch = guard.epoch();
        for (n, tx) in self.publishers.iter().enumerate() {
            // Barriers always force the publish buffer out first; the
            // marker must sit behind every op published before it.
            self.core
                .flush_publish_buffer(n, tx)
                .expect("commit queue closed during sync barrier");
            // permit_blocking: the barrier slot is held across the marker
            // send by design — workers never take the slot, they only
            // drain the queue, so a full queue always resolves.
            syncguard::permit_blocking(|| {
                tx.send(QueueMsg {
                    op: CommitOp::Barrier { epoch },
                    client: u32::MAX,
                    epoch,
                    timestamp: self.core.now(),
                    id: dfs::OpId::NONE,
                    degraded: false,
                })
            })
            .expect("commit queue closed during sync barrier");
        }
        guard.wait_workers();
        guard.complete();
        // Everything published before the barrier is now confirmed; a
        // drained durable region can shed its logs.
        // lint: allow(hold-across-blocking, WAL truncation must run inside the barrier: the held slot fences new ops)
        if self.core.maybe_truncate_wals() {
            // Every log is empty and the barrier fences new publishes, so
            // no identity recorded under this root can ever replay: shed
            // them all (bounds seen-cache growth in long-lived regions).
            let pruned = self.dfs.prune_replay_identities(&self.core.root, u64::MAX);
            self.core.counters.add("replay_pruned", pruned as u64);
        }
    }
}

/// Read-increment-write the WAL directory's incarnation counter. The
/// incarnation forms the high bits of every `write_id`, so identities
/// never collide across restarts of the same region — which is why the
/// bump must be crash-safe: the new value is written to a temp file,
/// fsynced, renamed over the counter, and the directory is fsynced, so a
/// crash either keeps the old value (the next launch re-bumps past it)
/// or lands the new one, never a torn or reverted counter. A counter
/// that exists but does not parse fails the launch: silently restarting
/// from 0 would reuse incarnations and no-op real ops against stale
/// seen-cache identities.
fn bump_incarnation(wal_dir: &std::path::Path) -> FsResult<u64> {
    let io_err = |e: std::io::Error| FsError::Backend(format!("incarnation file: {e}"));
    let path = wal_dir.join("incarnation");
    let current = match std::fs::read_to_string(&path) {
        Ok(s) => s.trim().parse::<u64>().map_err(|_| {
            FsError::Backend(format!(
                "incarnation file {} is corrupt; refusing to reuse write_id space",
                path.display()
            ))
        })?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
        Err(e) => return Err(io_err(e)),
    };
    let next = current + 1;
    if next >= dfs::OpId::MAX_INCARNATION {
        return Err(FsError::Backend(
            "incarnation counter exhausted the write_id incarnation bits".into(),
        ));
    }
    let tmp = wal_dir.join("incarnation.tmp");
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(next.to_string().as_bytes()).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    std::fs::rename(&tmp, &path).map_err(io_err)?;
    // The rename itself must be durable, or a crash could resurrect the
    // previous counter value after this launch already used `next`.
    std::fs::File::open(wal_dir).map_err(io_err)?.sync_all().map_err(io_err)?;
    Ok(next)
}

/// Replay recovered commit-log entries against the DFS, preserving
/// per-node order and interleaving nodes round-robin. An entry whose
/// parent is not yet present waits for the other queues; when no queue
/// can make progress **one** stuck head is dropped (preferring one whose
/// prerequisite was lost before it became durable) and the round-robin
/// resumes — an entry blocked only on an entry deeper in another queue
/// survives to apply once its prerequisite surfaces. All applies are
/// idempotent — a crash *during* this replay (see `recovery_crash_after`)
/// just means the next launch replays the same log again, and the
/// seen-cache no-ops the prefix that already landed.
fn replay_wal_entries(
    core: &RegionCore,
    fs: &dfs::DfsClient,
    per_node: Vec<Vec<WalEntry>>,
) -> FsResult<()> {
    let cred = core.config.cred;
    let mut queues: Vec<std::collections::VecDeque<WalEntry>> =
        per_node.into_iter().map(Into::into).collect();
    let crash_after = core.config.recovery_crash_after;
    let mut applied = 0u64;
    loop {
        let mut progress = false;
        let mut remaining = false;
        for q in queues.iter_mut() {
            while let Some(entry) = q.front() {
                if !replay_one(core, fs, entry, &cred)? {
                    remaining = true;
                    break;
                }
                q.pop_front();
                progress = true;
                applied += 1;
                core.counters.incr("recovery_applied");
                if crash_after == Some(applied) {
                    return Err(FsError::Backend("crash-kill: recovery interrupted".into()));
                }
            }
        }
        if !remaining {
            return Ok(());
        }
        if !progress && drop_one_stuck_head(&mut queues) {
            core.counters.incr("recovery_skipped");
        }
    }
}

/// Pick one stuck queue head to abandon when replay cannot make
/// progress. A head is only truly unrecoverable when the path it waits
/// for (its parent for creations, the file itself for writebacks) is not
/// created by *any* entry still queued — prefer dropping such a head.
/// Heads whose prerequisite is merely deeper in another queue get
/// another round once the blocker is gone. Falls back to the first
/// non-empty queue so that (impossible-in-practice) cyclic waits still
/// terminate.
fn drop_one_stuck_head(queues: &mut [std::collections::VecDeque<WalEntry>]) -> bool {
    let pending_creations: std::collections::HashSet<&str> = queues
        .iter()
        .flat_map(|q| q.iter())
        .filter_map(|e| match &e.msg.op {
            CommitOp::Mkdir { path, .. } | CommitOp::Create { path, .. } => Some(path.as_str()),
            _ => None,
        })
        .collect();
    let victim = queues
        .iter()
        .position(|q| {
            q.front().is_some_and(|e| match replay_waits_for(&e.msg.op) {
                Some(need) => !pending_creations.contains(need),
                None => true,
            })
        })
        .or_else(|| queues.iter().position(|q| !q.is_empty()));
    match victim {
        Some(i) => queues[i].pop_front().is_some(),
        None => false,
    }
}

/// The path a blocked replay entry is waiting to appear: the parent
/// directory for namespace creations, the file itself for data
/// writebacks. `None` for ops that never block in [`replay_one`].
fn replay_waits_for(op: &CommitOp) -> Option<&str> {
    match op {
        CommitOp::Mkdir { path, .. } | CommitOp::Create { path, .. } => fspath::parent(path),
        CommitOp::WriteInline { path } => Some(path),
        CommitOp::Unlink { .. } | CommitOp::Barrier { .. } | CommitOp::Batch(_) => None,
    }
}

/// Apply one recovered entry. `Ok(true)` = handled (applied, no-oped or
/// harmlessly moot), `Ok(false)` = blocked on an entry from another
/// node's queue.
fn replay_one(
    core: &RegionCore,
    fs: &dfs::DfsClient,
    entry: &WalEntry,
    cred: &fsapi::Credentials,
) -> FsResult<bool> {
    let msg = &entry.msg;
    let apply_ns = |op: dfs::BatchOp| -> FsResult<()> {
        fs.apply_batch_idempotent(&[op], &[msg.id], cred)
            .pop()
            .unwrap_or(Err(FsError::Backend("empty batch result".into())))
    };
    match &msg.op {
        CommitOp::Mkdir { path, mode } => {
            match apply_ns(dfs::BatchOp::Mkdir { path: path.clone(), mode: *mode }) {
                Ok(()) => Ok(true),
                // The directory exists (created outside the log's view):
                // the intent is satisfied.
                Err(FsError::AlreadyExists) => {
                    core.counters.incr("recovery_exists");
                    Ok(true)
                }
                Err(FsError::NotFound) => Ok(false),
                Err(e) => Err(e),
            }
        }
        CommitOp::Create { path, mode } => {
            match apply_ns(dfs::BatchOp::Create { path: path.clone(), mode: *mode }) {
                Ok(()) => Ok(true),
                Err(FsError::AlreadyExists) => {
                    core.counters.incr("recovery_exists");
                    Ok(true)
                }
                Err(FsError::NotFound) => Ok(false),
                Err(e) => Err(e),
            }
        }
        CommitOp::Unlink { path } => {
            match apply_ns(dfs::BatchOp::Unlink { path: path.clone() }) {
                Ok(()) => Ok(true),
                // Already gone — removal is satisfied.
                Err(FsError::NotFound) => {
                    core.counters.incr("recovery_gone");
                    Ok(true)
                }
                Err(e) => Err(e),
            }
        }
        CommitOp::WriteInline { path } => {
            let data = entry.snapshot.as_deref().unwrap_or(&[]);
            match fs.write_idempotent(path, cred, data, msg.id) {
                Ok(_) => Ok(true),
                Err(FsError::NotFound) => Ok(false),
                Err(e) => Err(e),
            }
        }
        // Barriers and batch wrappers are never logged.
        CommitOp::Barrier { .. } | CommitOp::Batch(_) => Ok(true),
    }
}

impl Drop for PaconRegion {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let mut threads = self.threads.lock();
        for t in threads.drain(..) {
            // lint: allow(hold-across-blocking, shutdown joins commit threads under `threads`; joined threads never take it)
            let _ = t.join();
        }
    }
}

/// Route for an incoming path (used by the client).
pub enum Route {
    /// Inside this client's own region.
    Own,
    /// Inside merged region `idx` (read-only).
    Merged(usize),
    /// Outside every known region: redirect to the DFS.
    Redirect,
}

/// Pick a route for `path` given the own region and merged handles.
pub fn route_path(core: &RegionCore, merged: &[RegionHandle], path: &str) -> Route {
    if core.contains(path) {
        return Route::Own;
    }
    for (i, h) in merged.iter().enumerate() {
        if fspath::is_same_or_ancestor(&h.root, path) {
            return Route::Merged(i);
        }
    }
    Route::Redirect
}

/// The paper's use case 3 (Section III.B): applications with
/// *overlapping* working directories should run in the same large
/// consistent region — the topmost one. Given the requested workspaces,
/// return the workspace roots to actually launch regions for: every path
/// that has an ancestor in the set collapses into that ancestor.
///
/// ```
/// let roots = pacon::region::collapse_overlapping_workspaces(&[
///     "/A", "/A/B", "/C", "/C/D/E", "/F",
/// ]).unwrap();
/// assert_eq!(roots, vec!["/A", "/C", "/F"]);
/// ```
pub fn collapse_overlapping_workspaces(workspaces: &[&str]) -> FsResult<Vec<String>> {
    let mut normalized: Vec<String> = workspaces
        .iter()
        .map(|w| fspath::normalize(w))
        .collect::<FsResult<_>>()?;
    normalized.sort();
    normalized.dedup();
    let mut roots: Vec<String> = Vec::new();
    for w in normalized {
        // Sorted order guarantees any ancestor appears before its
        // descendants.
        if !roots.iter().any(|r| fspath::is_same_or_ancestor(r, &w)) {
            roots.push(w);
        }
    }
    Ok(roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs::DfsCluster;
    use fsapi::Credentials;
    use simnet::LatencyProfile;
    use simnet::Topology;

    fn launch(workspace: &str) -> (Arc<DfsCluster>, Arc<PaconRegion>) {
        let dfs = DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
        let region = PaconRegion::launch_paused(
            PaconConfig::new(workspace, Topology::new(2, 2), Credentials::new(1, 1)),
            &dfs,
        )
        .unwrap();
        (dfs, region)
    }

    #[test]
    fn launch_creates_the_workspace_chain_on_the_dfs() {
        let (dfs, _region) = launch("/deep/nested/workspace");
        use fsapi::FileSystem;
        let fs = dfs.client();
        let cred = Credentials::new(1, 1);
        assert!(fs.stat("/deep", &cred).unwrap().is_dir());
        assert!(fs.stat("/deep/nested", &cred).unwrap().is_dir());
        assert!(fs.stat("/deep/nested/workspace", &cred).unwrap().is_dir());
    }

    #[test]
    fn workspace_root_rejected() {
        let dfs = DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
        let res = PaconRegion::launch_paused(
            PaconConfig::new("/", Topology::new(1, 1), Credentials::new(1, 1)),
            &dfs,
        );
        assert!(res.is_err());
    }

    #[test]
    fn contains_and_route() {
        let (_dfs, region) = launch("/app");
        let core = region.core();
        assert!(core.contains("/app"));
        assert!(core.contains("/app/x/y"));
        assert!(!core.contains("/apps"));
        assert!(!core.contains("/other"));
        assert!(matches!(route_path(core, &[], "/app/x"), Route::Own));
        assert!(matches!(route_path(core, &[], "/other"), Route::Redirect));
        let handle = region.handle();
        let (_d2, region2) = launch("/other");
        assert!(matches!(
            route_path(region2.core(), &[handle], "/app/x"),
            Route::Merged(0)
        ));
    }

    #[test]
    fn drained_tracks_enqueue_complete() {
        let (_dfs, region) = launch("/app");
        let core = region.core();
        assert!(core.drained());
        core.note_enqueued();
        assert!(!core.drained());
        core.note_completed();
        assert!(core.drained());
    }

    #[test]
    fn now_is_monotonic() {
        let (_dfs, region) = launch("/app");
        let a = region.core().now();
        let b = region.core().now();
        assert!(b > a);
    }

    fn plain_entry(op: CommitOp) -> WalEntry {
        WalEntry {
            msg: QueueMsg {
                op,
                client: 0,
                epoch: 0,
                timestamp: 0,
                id: dfs::OpId::NONE,
                degraded: false,
            },
            snapshot: None,
        }
    }

    /// Regression (review): a stalled replay round must only abandon the
    /// head whose prerequisite is truly lost. Here q0's `create /app/a/f`
    /// is blocked on `mkdir /app/a` sitting *behind* the unrecoverable
    /// `mkdir /lost/x` in q1 — the old all-heads drop lost the create.
    #[test]
    fn stalled_replay_drops_only_unrecoverable_heads() {
        let (dfs, region) = launch("/app");
        let fs = dfs.client();
        let core = region.core();
        let q0 = vec![plain_entry(CommitOp::Create { path: "/app/a/f".into(), mode: 0o644 })];
        let q1 = vec![
            plain_entry(CommitOp::Mkdir { path: "/lost/x".into(), mode: 0o755 }),
            plain_entry(CommitOp::Mkdir { path: "/app/a".into(), mode: 0o755 }),
        ];
        replay_wal_entries(core, &fs, vec![q0, q1]).unwrap();
        let cred = Credentials::new(1, 1);
        assert!(fs.stat("/app/a/f", &cred).unwrap().is_file(), "recoverable op was dropped");
        assert_eq!(core.counters.get("recovery_skipped"), 1, "only /lost/x is unrecoverable");
        assert_eq!(core.counters.get("recovery_applied"), 2);
    }

    #[test]
    fn stalled_replay_with_cyclic_waits_still_terminates() {
        let (dfs, region) = launch("/app");
        let fs = dfs.client();
        let core = region.core();
        // Each head waits on a creation queued behind the other's head.
        let q0 = vec![
            plain_entry(CommitOp::Create { path: "/app/x/f".into(), mode: 0o644 }),
            plain_entry(CommitOp::Mkdir { path: "/app/y".into(), mode: 0o755 }),
        ];
        let q1 = vec![
            plain_entry(CommitOp::Create { path: "/app/y/g".into(), mode: 0o644 }),
            plain_entry(CommitOp::Mkdir { path: "/app/x".into(), mode: 0o755 }),
        ];
        replay_wal_entries(core, &fs, vec![q0, q1]).unwrap();
        // One head had to be sacrificed to break the cycle; everything
        // else must land.
        assert_eq!(core.counters.get("recovery_skipped"), 1);
        assert_eq!(core.counters.get("recovery_applied"), 3);
    }

    #[test]
    fn incarnation_counter_bumps_durably_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "pacon-incarnation-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(bump_incarnation(&dir).unwrap(), 1);
        assert_eq!(bump_incarnation(&dir).unwrap(), 2);
        assert!(!dir.join("incarnation.tmp").exists(), "temp file must not survive");
        // A corrupt counter must fail the launch, not restart from 0.
        std::fs::write(dir.join("incarnation"), "not-a-number").unwrap();
        assert!(bump_incarnation(&dir).is_err());
        // An exhausted counter must refuse rather than truncate.
        std::fs::write(dir.join("incarnation"), (dfs::OpId::MAX_INCARNATION - 1).to_string())
            .unwrap();
        assert!(bump_incarnation(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn collapse_overlapping() {
        let roots =
            collapse_overlapping_workspaces(&["/A/B", "/A", "/C/D/E", "/C", "/F"]).unwrap();
        assert_eq!(roots, vec!["/A", "/C", "/F"]);
        // Disjoint stays disjoint; sibling shared prefixes are distinct.
        let roots = collapse_overlapping_workspaces(&["/ab", "/a"]).unwrap();
        assert_eq!(roots, vec!["/a", "/ab"]);
        // Duplicates collapse.
        let roots = collapse_overlapping_workspaces(&["/x", "/x"]).unwrap();
        assert_eq!(roots, vec!["/x"]);
        // Invalid paths propagate errors.
        assert!(collapse_overlapping_workspaces(&["relative"]).is_err());
    }
}
