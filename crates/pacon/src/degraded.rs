//! Per-region degraded-mode state machine (the fault plane's client
//! side): `Healthy → Degraded → Rewarming → Healthy`.
//!
//! A client enters **Degraded** when a cache RPC exhausts its retry
//! budget/deadline ([`crate::retry::RetryPolicy`]). While degraded,
//! reads fall through to the DFS backup copy and cache RPCs fail fast —
//! except for a rate-limited **recovery probe**: one raw attempt per
//! probe interval. A successful probe moves the region to **Rewarming**,
//! where traffic goes cache-first again and DFS loads are put back into
//! the cache (counted as `rewarm_keys`); after [`REWARM_STREAK`]
//! consecutive cache successes the region is **Healthy** and the
//! degraded window (measured on the region's virtual clock) closes.
//!
//! All transitions are lock-free atomics: this sits on the hot read
//! path, where the healthy-mode cost must stay one relaxed load.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Consecutive cache successes in `Rewarming` before declaring
/// `Healthy`. Small on purpose: a flapping node re-enters Degraded
/// through the normal retry path, so optimism here is cheap.
pub const REWARM_STREAK: u32 = 4;

/// Client-visible cache health of one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Cache RPCs served normally.
    Healthy,
    /// Retry budget exhausted: reads fall through to the DFS, cache RPCs
    /// fail fast, probes gate re-entry.
    Degraded,
    /// A probe succeeded: cache-first again, misses re-warm the cache.
    Rewarming,
}

const HEALTHY: u8 = 0;
const DEGRADED: u8 = 1;
const REWARMING: u8 = 2;

/// Shared, lock-free degraded-mode state (one per region core).
pub struct DegradedState {
    mode: AtomicU8,
    /// Virtual-ns timestamp when the current degraded window opened.
    entered_at: AtomicU64,
    /// Closed degraded windows, accumulated (virtual ns).
    total_ns: AtomicU64,
    /// Consecutive cache successes while rewarming.
    streak: AtomicU32,
    /// Virtual-ns time the next recovery probe is allowed.
    probe_at: AtomicU64,
    /// Times the region entered degraded mode.
    entries: AtomicU64,
}

impl DegradedState {
    pub fn new() -> Self {
        Self {
            mode: AtomicU8::new(HEALTHY),
            entered_at: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            streak: AtomicU32::new(0),
            probe_at: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }

    pub fn mode(&self) -> Mode {
        match self.mode.load(Ordering::Acquire) {
            HEALTHY => Mode::Healthy,
            DEGRADED => Mode::Degraded,
            _ => Mode::Rewarming,
        }
    }

    /// Retry budget exhausted at virtual time `now`: enter (or re-enter)
    /// degraded mode. A failure during Rewarming keeps the original
    /// window open — the region was never healthy in between.
    pub fn enter_degraded(&self, now_ns: u64, probe_interval_ns: u64) {
        let prev = self.mode.swap(DEGRADED, Ordering::AcqRel);
        if prev == HEALTHY {
            self.entered_at.store(now_ns, Ordering::Release);
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        self.streak.store(0, Ordering::Relaxed);
        self.probe_at.store(now_ns + probe_interval_ns, Ordering::Release);
    }

    /// Is a recovery probe due at `now`? Claims the probe slot (and
    /// schedules the next one) when it is, so concurrent clients send
    /// one probe per interval, not one each.
    pub fn probe_due(&self, now_ns: u64, probe_interval_ns: u64) -> bool {
        let due = self.probe_at.load(Ordering::Acquire);
        now_ns >= due
            && self
                .probe_at
                .compare_exchange(
                    due,
                    now_ns + probe_interval_ns,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
    }

    /// A recovery probe reached the cache: start rewarming.
    pub fn begin_rewarm(&self) {
        if self
            .mode
            .compare_exchange(DEGRADED, REWARMING, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            self.streak.store(0, Ordering::Relaxed);
        }
    }

    /// A cache RPC succeeded at virtual time `now`. Returns `true` when
    /// this success closed the degraded window (Rewarming → Healthy).
    pub fn note_success(&self, now_ns: u64) -> bool {
        if self.mode.load(Ordering::Acquire) != REWARMING {
            return false;
        }
        let streak = self.streak.fetch_add(1, Ordering::AcqRel) + 1;
        if streak < REWARM_STREAK {
            return false;
        }
        if self
            .mode
            .compare_exchange(REWARMING, HEALTHY, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            let opened = self.entered_at.load(Ordering::Acquire);
            self.total_ns.fetch_add(now_ns.saturating_sub(opened), Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Total virtual ns spent outside Healthy, including the window
    /// still open at `now` (if any).
    pub fn window_ns(&self, now_ns: u64) -> u64 {
        let closed = self.total_ns.load(Ordering::Acquire);
        if self.mode.load(Ordering::Acquire) == HEALTHY {
            closed
        } else {
            closed + now_ns.saturating_sub(self.entered_at.load(Ordering::Acquire))
        }
    }

    /// Times the region has entered degraded mode.
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }
}

impl Default for DegradedState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cycle_accumulates_the_window() {
        let d = DegradedState::new();
        assert_eq!(d.mode(), Mode::Healthy);
        assert_eq!(d.window_ns(50), 0);

        d.enter_degraded(100, 10);
        assert_eq!(d.mode(), Mode::Degraded);
        assert_eq!(d.entries(), 1);
        assert_eq!(d.window_ns(150), 50, "open window counts");

        // Probe slot: one per interval.
        assert!(!d.probe_due(105, 10), "not due yet");
        assert!(d.probe_due(110, 10));
        assert!(!d.probe_due(110, 10), "slot already claimed");

        d.begin_rewarm();
        assert_eq!(d.mode(), Mode::Rewarming);
        for _ in 0..REWARM_STREAK - 1 {
            assert!(!d.note_success(200));
        }
        assert!(d.note_success(200), "streak closes the window");
        assert_eq!(d.mode(), Mode::Healthy);
        assert_eq!(d.window_ns(999), 100, "window 100→200 is closed");
    }

    #[test]
    fn failure_during_rewarm_keeps_the_window_open() {
        let d = DegradedState::new();
        d.enter_degraded(100, 10);
        assert!(d.probe_due(110, 10));
        d.begin_rewarm();
        assert!(!d.note_success(120));
        // Relapse: same window, entries does not double-count.
        d.enter_degraded(130, 10);
        assert_eq!(d.entries(), 1);
        assert_eq!(d.window_ns(150), 50, "window still anchored at 100");
        // Streak was reset by the relapse.
        assert!(d.probe_due(140, 10));
        d.begin_rewarm();
        for _ in 0..REWARM_STREAK - 1 {
            assert!(!d.note_success(160));
        }
        assert!(d.note_success(160));
        assert_eq!(d.window_ns(999), 60);
    }
}
