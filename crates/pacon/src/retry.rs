//! Deterministic jittered exponential backoff for cache RPCs.
//!
//! Every delay is a pure function of `(policy, attempt, seed)` — no wall
//! clock, no global RNG — so a chaos run replays identically from its
//! seed and the fault-plane trace. "Sleeping" means advancing the
//! region's virtual clock ([`crate::region::RegionCore::advance`]); real
//! time never passes (lint R3).

use crate::config::PaconConfig;

/// How many times the base delay may double before it is clamped. With
/// the default budget (a handful of retries) the cap never binds; it is
/// a safety rail for configs with a huge `retry_budget`.
const CAP_DOUBLINGS: u32 = 6;

/// Backoff/deadline envelope guarding one cache RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total virtual ns one guarded call may burn sleeping across all of
    /// its retries before the client declares the node unreachable.
    pub deadline_ns: u64,
    /// Retry attempts after the initial try.
    pub budget: u32,
    /// First retry's nominal delay; doubles per retry.
    pub base_ns: u64,
    /// Clamp on any single delay.
    pub cap_ns: u64,
}

impl RetryPolicy {
    /// Policy from the region's config knobs (`rpc_deadline`,
    /// `retry_budget`, `backoff_base`).
    pub fn from_config(cfg: &PaconConfig) -> Self {
        let base = cfg.backoff_base.max(2);
        Self {
            deadline_ns: cfg.rpc_deadline,
            budget: cfg.retry_budget,
            base_ns: base,
            cap_ns: base.saturating_mul(1 << CAP_DOUBLINGS),
        }
    }

    /// Full-jitter delay for retry `attempt` (0-based): uniform in
    /// `[d/2, d]` with `d = min(base · 2^attempt, cap)`. Never zero — a
    /// zero backoff would turn a down node into a hot spin loop.
    pub fn backoff_ns(&self, attempt: u32, seed: u64) -> u64 {
        let nominal = self
            .base_ns
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        let d = nominal.min(self.cap_ns).max(2);
        let half = d / 2;
        half + splitmix64(seed ^ ((attempt as u64 + 1) << 32)) % (d - half + 1)
    }

    /// Delay to sleep before retry `attempt` (0-based), given `slept_ns`
    /// already burned by earlier backoffs under the same `seed`. `None`
    /// when the budget or the deadline is exhausted — time to go
    /// degraded. By construction the sum of every `Some` delay for one
    /// `(seed, call)` never exceeds `deadline_ns`.
    pub fn next_backoff(&self, attempt: u32, slept_ns: u64, seed: u64) -> Option<u64> {
        if attempt >= self.budget {
            return None;
        }
        let d = self.backoff_ns(attempt, seed);
        if slept_ns.saturating_add(d) > self.deadline_ns {
            return None;
        }
        Some(d)
    }
}

/// SplitMix64 — the same finalizer the vendored `rand` uses for seeding;
/// one multiply-xor round is plenty for backoff jitter.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsapi::Credentials;
    use simnet::Topology;

    fn policy() -> RetryPolicy {
        let cfg = PaconConfig::new("/app", Topology::new(1, 1), Credentials::new(1, 1));
        RetryPolicy::from_config(&cfg)
    }

    #[test]
    fn same_seed_same_delays() {
        let p = policy();
        for attempt in 0..8 {
            assert_eq!(p.backoff_ns(attempt, 42), p.backoff_ns(attempt, 42));
        }
        assert_ne!(p.backoff_ns(0, 1), p.backoff_ns(0, 2), "seeds must differ");
    }

    #[test]
    fn budget_and_deadline_cut_off() {
        let p = policy();
        assert!(p.next_backoff(p.budget, 0, 7).is_none(), "budget exhausted");
        assert!(p.next_backoff(0, p.deadline_ns, 7).is_none(), "deadline burned");
        assert!(p.next_backoff(0, 0, 7).is_some());
    }

    #[test]
    fn delays_grow_then_clamp() {
        let p = RetryPolicy { deadline_ns: u64::MAX, budget: 40, base_ns: 100, cap_ns: 800 };
        // Nominal doubles 100→200→400→800 then the cap pins it.
        for attempt in 0..40 {
            let d = p.backoff_ns(attempt, 9);
            assert!((1..=800).contains(&d), "attempt {attempt} gave {d}");
        }
        assert!(p.backoff_ns(30, 9) >= 400, "cap region stays in [cap/2, cap]");
    }
}
