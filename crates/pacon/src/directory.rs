//! Region directory: discovery for consistent-region merging.
//!
//! The paper's merge protocol (Section III.D-4) starts with "get the
//! basic information (e.g., node addresses, permission information) of
//! the consistent region that will be merged". This module is that
//! lookup service: running regions register their [`RegionHandle`]s
//! under their workspace roots; applications that want to share data
//! resolve a path (or a workspace root) to a handle and pass it to
//! [`crate::PaconClient::merge_region`].
//!
//! In a real deployment this registry would live on a well-known service
//! (or on the DFS itself); here it is an in-process shared map, which is
//! exactly what the single-simulation experiments need.

use std::collections::BTreeMap;
use std::sync::Arc;

use fsapi::{path as fspath, FsError, FsResult};
use syncguard::{level, RwLock};

use crate::region::{PaconRegion, RegionHandle};

/// Shared registry of running consistent regions.
///
/// Reads work on an [`Arc`] snapshot of the map: lookups drop the lock
/// before touching entries and never copy the registry, so registration
/// (rare) pays the clone-on-write and resolution (hot) stays allocation-
/// free.
#[derive(Clone)]
pub struct RegionDirectory {
    inner: Arc<RwLock<Arc<BTreeMap<String, RegionHandle>>>>,
}

impl Default for RegionDirectory {
    fn default() -> Self {
        Self::new()
    }
}

impl RegionDirectory {
    pub fn new() -> Self {
        Self {
            inner: Arc::new(RwLock::new(
                level::CLIENT_VIEW,
                "pacon.region_directory",
                Arc::new(BTreeMap::new()),
            )),
        }
    }

    /// Current registry contents as a shared immutable snapshot.
    pub fn snapshot(&self) -> Arc<BTreeMap<String, RegionHandle>> {
        Arc::clone(&self.inner.read())
    }

    /// Register a running region under its workspace root. Fails if a
    /// region is already registered at the same root.
    pub fn register(&self, region: &PaconRegion) -> FsResult<()> {
        let handle = region.handle();
        let mut map = self.inner.write();
        if map.contains_key(&handle.root) {
            return Err(FsError::AlreadyExists);
        }
        let mut next = BTreeMap::clone(&map);
        next.insert(handle.root.clone(), handle);
        *map = Arc::new(next);
        Ok(())
    }

    /// Remove the registration for `root` (application shutdown).
    pub fn unregister(&self, root: &str) -> FsResult<()> {
        let mut map = self.inner.write();
        if !map.contains_key(root) {
            return Err(FsError::NotFound);
        }
        let mut next = BTreeMap::clone(&map);
        next.remove(root);
        *map = Arc::new(next);
        Ok(())
    }

    /// Handle of the region rooted exactly at `root`.
    pub fn lookup(&self, root: &str) -> Option<RegionHandle> {
        self.snapshot().get(root).cloned()
    }

    /// Handle of the innermost region whose workspace contains `path`.
    pub fn find_region_for(&self, path: &str) -> Option<RegionHandle> {
        let map = self.snapshot();
        let mut best: Option<&RegionHandle> = None;
        for (root, handle) in map.iter() {
            if fspath::is_same_or_ancestor(root, path) {
                let deeper = best
                    .map(|b| fspath::depth(root) > fspath::depth(&b.root))
                    .unwrap_or(true);
                if deeper {
                    best = Some(handle);
                }
            }
        }
        best.cloned()
    }

    /// Workspace roots currently registered, sorted.
    pub fn roots(&self) -> Vec<String> {
        self.snapshot().keys().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaconConfig;
    use fsapi::Credentials;
    use simnet::{LatencyProfile, Topology};

    fn region(workspace: &str) -> (Arc<dfs::DfsCluster>, Arc<PaconRegion>) {
        let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
        let r = PaconRegion::launch_paused(
            PaconConfig::new(workspace, Topology::new(1, 1), Credentials::new(1, 1)),
            &dfs,
        )
        .unwrap();
        (dfs, r)
    }

    #[test]
    fn register_lookup_unregister() {
        let dir = RegionDirectory::new();
        let (_d, r) = region("/appA");
        dir.register(&r).unwrap();
        assert_eq!(dir.len(), 1);
        assert!(dir.lookup("/appA").is_some());
        assert!(dir.lookup("/appB").is_none());
        // Double registration rejected.
        assert_eq!(dir.register(&r), Err(FsError::AlreadyExists));
        dir.unregister("/appA").unwrap();
        assert!(dir.is_empty());
        assert_eq!(dir.unregister("/appA"), Err(FsError::NotFound));
    }

    #[test]
    fn find_region_resolves_innermost() {
        let dir = RegionDirectory::new();
        let (_d1, outer) = region("/data");
        let (_d2, inner) = region("/data/projectX");
        dir.register(&outer).unwrap();
        dir.register(&inner).unwrap();
        assert_eq!(dir.find_region_for("/data/projectX/file").unwrap().root, "/data/projectX");
        assert_eq!(dir.find_region_for("/data/other").unwrap().root, "/data");
        assert!(dir.find_region_for("/elsewhere").is_none());
        assert_eq!(dir.roots(), vec!["/data", "/data/projectX"]);
    }

    #[test]
    fn directory_is_shared_across_clones() {
        let dir = RegionDirectory::new();
        let dir2 = dir.clone();
        let (_d, r) = region("/shared");
        dir.register(&r).unwrap();
        assert!(dir2.lookup("/shared").is_some());
    }

    #[test]
    fn snapshot_is_stable_across_later_registrations() {
        let dir = RegionDirectory::new();
        let (_d1, a) = region("/appA");
        dir.register(&a).unwrap();
        let snap = dir.snapshot();
        let (_d2, b) = region("/appB");
        dir.register(&b).unwrap();
        // The old snapshot is immutable; a fresh one sees the update.
        assert_eq!(snap.len(), 1);
        assert_eq!(dir.snapshot().len(), 2);
        // Snapshots share the registry storage, not a copy.
        assert!(Arc::ptr_eq(&dir.snapshot(), &dir.snapshot()));
    }

    #[test]
    fn discovered_handle_supports_merging() {
        use fsapi::FileSystem;
        let profile = Arc::new(LatencyProfile::zero());
        let dfs = dfs::DfsCluster::with_default_config(profile);
        let cred1 = Credentials::new(1, 1);
        let cred2 = Credentials::new(2, 2);
        let r1 = PaconRegion::launch(
            PaconConfig::new("/pub", Topology::new(1, 1), cred1).with_permissions(
                crate::permission::RegionPermissions::uniform(0o755, cred1),
            ),
            &dfs,
        )
        .unwrap();
        let r2 = PaconRegion::launch(
            PaconConfig::new("/priv", Topology::new(1, 1), cred2),
            &dfs,
        )
        .unwrap();
        let dir = RegionDirectory::new();
        dir.register(&r1).unwrap();
        dir.register(&r2).unwrap();

        let p = r1.client(simnet::ClientId(0));
        p.create("/pub/result", &cred1, 0o644).unwrap();

        // The consumer discovers the producer's region through the
        // directory — no out-of-band handle passing.
        let c = r2.client(simnet::ClientId(0));
        let handle = dir.find_region_for("/pub/result").expect("discoverable");
        c.merge_region(handle);
        assert!(c.stat("/pub/result", &cred2).unwrap().is_file());
        r1.shutdown().unwrap();
        r2.shutdown().unwrap();
    }
}
