//! Drop-in `Mutex`/`RwLock`/`Condvar` wrappers with lock-order checking.
//!
//! Every lock is created with a **level** (its tier in the repo-wide lock
//! hierarchy, see [`level`]) and a **class name**. Under the `check`
//! feature the wrappers maintain, per process:
//!
//! - a thread-local stack of held locks;
//! - a global lock-order graph over lock *classes* (edges record the two
//!   acquisition sites that created them);
//! - cycle detection at acquisition time — a cycle in the class graph is
//!   a potential deadlock, reported with both involved sites;
//! - level checking — acquiring a lock whose level is *lower* (more
//!   outer) than a lock already held inverts the declared hierarchy;
//! - hold-time statistics per class;
//! - blocking-call violations: a thread that enters a blocking call
//!   (channel send/recv, see [`enter_blocking`]) while holding any
//!   syncguard lock is reported unless the site is wrapped in
//!   [`permit_blocking`] with a written deadlock-freedom argument.
//!
//! Violations are *recorded*, not panicked on, so a full test run
//! surfaces every problem at once; [`report`] returns the findings and
//! [`dot`] dumps the class graph in Graphviz DOT form for docs. Set
//! `SYNCGUARD_PANIC=1` to abort at the first finding instead (useful to
//! get a backtrace pointing at the offending acquisition).
//!
//! Without the `check` feature everything compiles to `#[inline]`
//! delegation to `parking_lot` — the level/name arguments are ignored
//! and no state exists. The locks are non-poisoning in both modes: a
//! panicking thread releases its guards and the next locker proceeds.

#![forbid(unsafe_code)]

pub mod level;
mod report;

pub use report::{
    BlockingViolation, ClassStats, CycleReport, EdgeReport, LevelViolation, Report,
};

#[cfg(feature = "check")]
mod checked;
#[cfg(feature = "check")]
pub use checked::{
    check_enabled, dot, enter_blocking, permit_blocking, report, reset, Condvar, Mutex,
    MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(not(feature = "check"))]
mod passthrough;
#[cfg(not(feature = "check"))]
pub use passthrough::{
    check_enabled, dot, enter_blocking, permit_blocking, report, reset, Condvar, Mutex,
    MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};
