//! Checking implementation: lock-order graph, cycle detection, level
//! enforcement, hold-time tracking, blocking-call auditing.
//!
//! The registry itself is guarded by a raw `parking_lot::Mutex` (the one
//! place allowed to construct a lock directly — it cannot participate in
//! its own ordering). The registry lock is only ever the innermost lock:
//! every helper acquires it, does pure in-memory work, and releases it
//! before returning, so instrumentation cannot deadlock the instrumented
//! program.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::Location;
use std::time::Instant;

use parking_lot as pl;

use crate::report::{
    BlockingViolation, ClassStats, CycleReport, EdgeReport, LevelViolation, Report,
};

/// True when lock-order checking is compiled in.
pub fn check_enabled() -> bool {
    true
}

type ClassId = usize;

struct ClassData {
    name: &'static str,
    level: u16,
    first_site: &'static Location<'static>,
    acquisitions: u64,
    max_hold_ns: u64,
    total_hold_ns: u64,
}

struct EdgeData {
    from_site: &'static Location<'static>,
    to_site: &'static Location<'static>,
    count: u64,
}

#[derive(Default)]
struct Registry {
    ids: HashMap<&'static str, ClassId>,
    classes: Vec<ClassData>,
    edges: HashMap<(ClassId, ClassId), EdgeData>,
    /// Adjacency over classes, mirroring `edges` keys.
    adj: Vec<Vec<ClassId>>,
    cycles: Vec<CycleReport>,
    level_violations: Vec<LevelViolation>,
    blocking_violations: Vec<BlockingViolation>,
    /// Dedup keys so each distinct finding is recorded once.
    seen_cycles: Vec<Vec<ClassId>>,
    seen_level: Vec<(ClassId, ClassId)>,
    seen_blocking: Vec<(&'static str, ClassId)>,
}

static REGISTRY: pl::Mutex<Option<Registry>> = pl::Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut slot = REGISTRY.lock();
    f(slot.get_or_insert_with(Registry::default))
}

#[derive(Clone, Copy)]
struct HeldEntry {
    class: ClassId,
    level: u16,
    site: &'static Location<'static>,
    token: u64,
}

thread_local! {
    static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
    static NEXT_TOKEN: Cell<u64> = const { Cell::new(0) };
    static BLOCK_PERMITS: Cell<u32> = const { Cell::new(0) };
}

fn panic_on_finding() -> bool {
    std::env::var_os("SYNCGUARD_PANIC").is_some_and(|v| v == "1")
}

fn loc(l: &'static Location<'static>) -> String {
    format!("{}:{}:{}", l.file(), l.line(), l.column())
}

impl Registry {
    fn intern(&mut self, name: &'static str, level: u16, site: &'static Location<'static>) -> ClassId {
        if let Some(&id) = self.ids.get(name) {
            debug_assert_eq!(
                self.classes[id].level, level,
                "lock class {name} declared with two levels"
            );
            return id;
        }
        let id = self.classes.len();
        self.ids.insert(name, id);
        self.classes.push(ClassData {
            name,
            level,
            first_site: site,
            acquisitions: 0,
            max_hold_ns: 0,
            total_hold_ns: 0,
        });
        self.adj.push(Vec::new());
        id
    }

    /// Shortest path `from -> ... -> to` in the class graph, if any.
    fn path_from(&self, from: ClassId, to: ClassId, path: &mut Vec<ClassId>) -> bool {
        if from == to {
            path.push(from);
            return true;
        }
        let n = self.classes.len();
        let mut pred: Vec<Option<ClassId>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(node) = queue.pop_front() {
            for &next in &self.adj[node] {
                if visited[next] {
                    continue;
                }
                visited[next] = true;
                pred[next] = Some(node);
                if next == to {
                    let mut chain = vec![to];
                    let mut cur = to;
                    while let Some(p) = pred[cur] {
                        chain.push(p);
                        cur = p;
                    }
                    chain.reverse();
                    path.extend(chain);
                    return true;
                }
                queue.push_back(next);
            }
        }
        false
    }
}

/// Record an acquisition attempt of (`name`, `level`) at `site`. Runs
/// *before* blocking on the underlying lock so a real deadlock still gets
/// its report out first. Returns the class id.
fn note_acquire(
    name: &'static str,
    level: u16,
    site: &'static Location<'static>,
) -> ClassId {
    let held: Vec<HeldEntry> = HELD.with(|h| h.borrow().clone());
    let (class, finding) = with_registry(|reg| {
        let class = reg.intern(name, level, site);
        reg.classes[class].acquisitions += 1;
        let mut finding: Option<String> = None;

        // Same-class reentrancy and hierarchy inversions.
        if let Some(worst) = held.iter().max_by_key(|e| e.level) {
            let same = held.iter().find(|e| e.class == class);
            if let Some(prev) = same {
                if !reg.seen_level.contains(&(class, class)) {
                    reg.seen_level.push((class, class));
                    reg.level_violations.push(LevelViolation {
                        held: name.to_string(),
                        held_level: level,
                        held_site: loc(prev.site),
                        acquired: name.to_string(),
                        acquired_level: level,
                        acquire_site: loc(site),
                        same_class: true,
                    });
                    finding = Some(format!(
                        "syncguard: reentrant acquisition of lock class `{name}` \
                         (held at {}, reacquired at {})",
                        loc(prev.site),
                        loc(site)
                    ));
                }
            } else if level < worst.level && !reg.seen_level.contains(&(worst.class, class)) {
                reg.seen_level.push((worst.class, class));
                reg.level_violations.push(LevelViolation {
                    held: reg.classes[worst.class].name.to_string(),
                    held_level: worst.level,
                    held_site: loc(worst.site),
                    acquired: name.to_string(),
                    acquired_level: level,
                    acquire_site: loc(site),
                    same_class: false,
                });
                finding = Some(format!(
                    "syncguard: hierarchy inversion — `{name}` (level {level}, at {}) \
                     acquired while holding `{}` (level {}, at {})",
                    loc(site),
                    reg.classes[worst.class].name,
                    worst.level,
                    loc(worst.site)
                ));
            }
        }

        // Order edge from the innermost held lock; transitivity covers the
        // rest (each held lock already has an edge to the next).
        if let Some(prev) = held.last() {
            if prev.class != class {
                // Cycle check *before* inserting: is `prev` reachable from
                // `class` already? Then class -> ... -> prev -> class.
                let mut path = Vec::new();
                if reg.path_from(class, prev.class, &mut path) {
                    let mut key: Vec<ClassId> = path.clone();
                    key.sort_unstable();
                    key.dedup();
                    if !reg.seen_cycles.contains(&key) {
                        reg.seen_cycles.push(key);
                        let classes: Vec<String> =
                            path.iter().map(|&c| reg.classes[c].name.to_string()).collect();
                        reg.cycles.push(CycleReport {
                            classes: classes.clone(),
                            held_site: loc(prev.site),
                            acquire_site: loc(site),
                        });
                        finding = Some(format!(
                            "syncguard: lock-order cycle {} -> {} (held `{}` at {}, \
                             acquiring `{name}` at {})",
                            classes.join(" -> "),
                            classes[0],
                            reg.classes[prev.class].name,
                            loc(prev.site),
                            loc(site)
                        ));
                    }
                }
                let edge = reg.edges.entry((prev.class, class)).or_insert_with(|| {
                    EdgeData { from_site: prev.site, to_site: site, count: 0 }
                });
                edge.count += 1;
                if !reg.adj[prev.class].contains(&class) {
                    reg.adj[prev.class].push(class);
                }
            }
        }
        (class, finding)
    });
    if let Some(msg) = finding {
        if panic_on_finding() {
            panic!("{msg}");
        }
    }
    class
}

/// Hold bookkeeping for one live guard. Pushed on acquisition, popped on
/// drop; pause/resume bracket condvar waits so wait time is not billed as
/// hold time (and the lock is not considered held while parked).
struct HeldToken {
    class: ClassId,
    level: u16,
    site: &'static Location<'static>,
    token: u64,
    since: Instant,
}

impl HeldToken {
    fn acquire(class: ClassId, level: u16, site: &'static Location<'static>) -> Self {
        let token = NEXT_TOKEN.with(|t| {
            let v = t.get();
            t.set(v + 1);
            v
        });
        HELD.with(|h| h.borrow_mut().push(HeldEntry { class, level, site, token }));
        Self { class, level, site, token, since: Instant::now() }
    }

    fn settle_hold(&self) {
        let ns = self.since.elapsed().as_nanos() as u64;
        with_registry(|reg| {
            let c = &mut reg.classes[self.class];
            c.total_hold_ns += ns;
            c.max_hold_ns = c.max_hold_ns.max(ns);
        });
    }

    fn pop(&self) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|e| e.token == self.token) {
                held.remove(pos);
            }
        });
    }

    /// Condvar wait entry: stop billing and unmark as held.
    fn pause(&self) {
        self.settle_hold();
        self.pop();
    }

    /// Condvar wait exit: remark as held, restart the clock.
    fn resume(&mut self) {
        HELD.with(|h| {
            h.borrow_mut().push(HeldEntry {
                class: self.class,
                level: self.level,
                site: self.site,
                token: self.token,
            })
        });
        self.since = Instant::now();
    }
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        self.settle_hold();
        self.pop();
    }
}

// ---------------------------------------------------------------------------
// Mutex

pub struct Mutex<T: ?Sized> {
    level: u16,
    name: &'static str,
    inner: pl::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    token: HeldToken,
    inner: pl::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub fn new(level: u16, name: &'static str, value: T) -> Self {
        Self { level, name, inner: pl::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let site = Location::caller();
        let class = note_acquire(self.name, self.level, site);
        let inner = self.inner.lock();
        MutexGuard { token: HeldToken::acquire(class, self.level, site), inner }
    }

    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let site = Location::caller();
        let inner = self.inner.try_lock()?;
        let class = note_acquire(self.name, self.level, site);
        Some(MutexGuard { token: HeldToken::acquire(class, self.level, site), inner })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// RwLock

pub struct RwLock<T: ?Sized> {
    level: u16,
    name: &'static str,
    inner: pl::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    _token: HeldToken,
    inner: pl::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    _token: HeldToken,
    inner: pl::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub fn new(level: u16, name: &'static str, value: T) -> Self {
        Self { level, name, inner: pl::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let site = Location::caller();
        let class = note_acquire(self.name, self.level, site);
        let inner = self.inner.read();
        RwLockReadGuard { _token: HeldToken::acquire(class, self.level, site), inner }
    }

    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let site = Location::caller();
        let class = note_acquire(self.name, self.level, site);
        let inner = self.inner.write();
        RwLockWriteGuard { _token: HeldToken::acquire(class, self.level, site), inner }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Condvar

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar(pl::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(pl::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        guard.token.pause();
        self.0.wait(&mut guard.inner);
        guard.token.resume();
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        guard.token.pause();
        let res = self.0.wait_until(&mut guard.inner, deadline);
        guard.token.resume();
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one()
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all()
    }
}

// ---------------------------------------------------------------------------
// Blocking-call auditing

/// Mark the current thread as entering a blocking call (channel send or
/// receive, thread join, I/O wait). If any syncguard lock is held and no
/// [`permit_blocking`] scope is active, a violation is recorded: blocking
/// while holding a lock stalls every other thread that needs it, and if
/// the blocked-on resource is drained by one of those threads, the
/// process deadlocks.
#[track_caller]
pub fn enter_blocking(label: &'static str) {
    if BLOCK_PERMITS.with(|p| p.get()) > 0 {
        return;
    }
    let held: Vec<HeldEntry> = HELD.with(|h| h.borrow().clone());
    if held.is_empty() {
        return;
    }
    let site = Location::caller();
    let msg = with_registry(|reg| {
        let first = held[0].class;
        if reg.seen_blocking.contains(&(label, first)) {
            return None;
        }
        reg.seen_blocking.push((label, first));
        let names: Vec<String> =
            held.iter().map(|e| reg.classes[e.class].name.to_string()).collect();
        reg.blocking_violations.push(BlockingViolation {
            label: label.to_string(),
            held: names.clone(),
            site: loc(site),
        });
        Some(format!(
            "syncguard: blocking call `{label}` at {} while holding [{}]",
            loc(site),
            names.join(", ")
        ))
    });
    if let Some(msg) = msg {
        if panic_on_finding() {
            panic!("{msg}");
        }
    }
}

/// Run `f` with blocking-call auditing suspended on this thread. Use only
/// at sites with a written deadlock-freedom argument (e.g. the publish
/// buffer held across a queue send, where the consumer never takes the
/// buffer lock while its queue is non-empty).
pub fn permit_blocking<R>(f: impl FnOnce() -> R) -> R {
    struct Permit;
    impl Drop for Permit {
        fn drop(&mut self) {
            BLOCK_PERMITS.with(|p| p.set(p.get() - 1));
        }
    }
    BLOCK_PERMITS.with(|p| p.set(p.get() + 1));
    let _permit = Permit;
    f()
}

// ---------------------------------------------------------------------------
// Reporting

/// Snapshot of everything observed since process start (or [`reset`]).
pub fn report() -> Report {
    with_registry(|reg| Report {
        classes: reg
            .classes
            .iter()
            .map(|c| ClassStats {
                name: c.name.to_string(),
                level: c.level,
                first_site: loc(c.first_site),
                acquisitions: c.acquisitions,
                max_hold_ns: c.max_hold_ns,
                total_hold_ns: c.total_hold_ns,
            })
            .collect(),
        edges: reg
            .edges
            .iter()
            .map(|(&(f, t), e)| EdgeReport {
                from: reg.classes[f].name.to_string(),
                to: reg.classes[t].name.to_string(),
                from_site: loc(e.from_site),
                to_site: loc(e.to_site),
                count: e.count,
            })
            .collect(),
        cycles: reg.cycles.clone(),
        level_violations: reg.level_violations.clone(),
        blocking_violations: reg.blocking_violations.clone(),
    })
}

/// The lock-order graph in Graphviz DOT form. Nodes are lock classes
/// (labelled with their level), edges are observed orderings; edges on a
/// detected cycle are drawn red.
pub fn dot() -> String {
    let rep = report();
    let mut cyclic: Vec<(String, String)> = Vec::new();
    for c in &rep.cycles {
        for w in c.classes.windows(2) {
            cyclic.push((w[0].clone(), w[1].clone()));
        }
        if let (Some(first), Some(last)) = (c.classes.first(), c.classes.last()) {
            cyclic.push((last.clone(), first.clone()));
        }
    }
    let mut out = String::from("digraph lock_order {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    let mut classes = rep.classes.clone();
    classes.sort_by_key(|c| (c.level, c.name.clone()));
    for c in &classes {
        out.push_str(&format!(
            "  \"{}\" [label=\"{}\\nlevel {}\"];\n",
            c.name, c.name, c.level
        ));
    }
    let mut edges = rep.edges.clone();
    edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
    for e in &edges {
        let red = cyclic.iter().any(|(f, t)| *f == e.from && *t == e.to);
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\"{}];\n",
            e.from,
            e.to,
            e.count,
            if red { ", color=red, penwidth=2" } else { "" }
        ));
    }
    out.push_str("}\n");
    out
}

/// Clear all recorded state (tests). Locks currently held by live guards
/// keep their thread-local entries; call between quiesced phases only.
pub fn reset() {
    *REGISTRY.lock() = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // The registry is process-global, so tests that assert on absence of
    // findings use distinct class names and filter by them.

    #[test]
    fn ordered_nesting_is_clean() {
        let a = Mutex::new(10, "t1.outer", 1);
        let b = Mutex::new(20, "t1.inner", 2);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let rep = report();
        assert!(rep.cycles.iter().all(|c| !c.classes.contains(&"t1.outer".to_string())));
        assert!(rep
            .level_violations
            .iter()
            .all(|v| v.held != "t1.outer" && v.acquired != "t1.inner"));
        assert!(rep
            .edges
            .iter()
            .any(|e| e.from == "t1.outer" && e.to == "t1.inner" && e.count == 1));
    }

    #[test]
    fn inverted_order_reports_cycle_with_sites() {
        let a = Arc::new(Mutex::new(30, "t2.a", ()));
        let b = Arc::new(Mutex::new(30, "t2.b", ()));
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock();
        })
        .join()
        .unwrap();
        let rep = report();
        let cycle = rep
            .cycles
            .iter()
            .find(|c| c.classes.contains(&"t2.a".to_string()))
            .expect("inversion must be reported");
        assert!(cycle.classes.contains(&"t2.b".to_string()));
        assert!(cycle.held_site.contains("checked.rs"));
        assert!(cycle.acquire_site.contains("checked.rs"));
    }

    #[test]
    fn three_lock_transitive_cycle_detected() {
        let a = Arc::new(Mutex::new(30, "t3.a", ()));
        let b = Arc::new(Mutex::new(30, "t3.b", ()));
        let c = Arc::new(Mutex::new(30, "t3.c", ()));
        {
            let _g = a.lock();
            let _h = b.lock();
        }
        {
            let _g = b.lock();
            let _h = c.lock();
        }
        let (a2, c2) = (Arc::clone(&a), Arc::clone(&c));
        std::thread::spawn(move || {
            let _g = c2.lock();
            let _h = a2.lock();
        })
        .join()
        .unwrap();
        let rep = report();
        let cycle = rep
            .cycles
            .iter()
            .find(|c| c.classes.contains(&"t3.c".to_string()))
            .expect("transitive cycle must be reported");
        assert!(cycle.classes.len() >= 3, "cycle should span all three classes");
    }

    #[test]
    fn level_inversion_reported() {
        let outer = Mutex::new(10, "t4.outer", ());
        let inner = Mutex::new(50, "t4.inner", ());
        let _gi = inner.lock();
        let _go = outer.lock();
        drop((_go, _gi));
        let rep = report();
        assert!(rep
            .level_violations
            .iter()
            .any(|v| v.held == "t4.inner" && v.acquired == "t4.outer" && !v.same_class));
    }

    #[test]
    fn reentrant_same_class_reported() {
        // Two instances of one class locked together is what bites in
        // practice: two shards of one map held at once.
        let a = Mutex::new(30, "t5.a", ());
        let b = Mutex::new(30, "t5.a", ());
        let _g = a.lock();
        let _h = b.lock();
        drop((_g, _h));
        let rep = report();
        assert!(rep.level_violations.iter().any(|v| v.acquired == "t5.a" && v.same_class));
    }

    #[test]
    fn blocking_with_lock_held_is_reported_and_permit_suppresses() {
        let m = Mutex::new(30, "t6.m", ());
        {
            let _g = m.lock();
            permit_blocking(|| enter_blocking("t6.permitted"));
        }
        {
            let _g = m.lock();
            enter_blocking("t6.naked");
        }
        enter_blocking("t6.unlocked");
        let rep = report();
        assert!(rep.blocking_violations.iter().any(|v| v.label == "t6.naked"));
        assert!(!rep.blocking_violations.iter().any(|v| v.label == "t6.permitted"));
        assert!(!rep.blocking_violations.iter().any(|v| v.label == "t6.unlocked"));
    }

    #[test]
    fn condvar_wait_releases_hold() {
        let pair = Arc::new((Mutex::new(40, "t7.m", false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
        let rep = report();
        let c = rep.classes.iter().find(|c| c.name == "t7.m").unwrap();
        // The waiter paused its hold while parked, so no hold comes close
        // to the 10ms sleep.
        assert!(c.max_hold_ns < 8_000_000, "wait time must not bill as hold time");
    }

    #[test]
    fn panicked_holder_does_not_wedge_the_lock() {
        let m = Arc::new(Mutex::new(30, "t8.m", 7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("worker dies while holding the lock");
        })
        .join();
        // Non-poisoning: the next locker proceeds and sees intact data.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let a = Mutex::new(10, "t9.a", ());
        let b = Mutex::new(20, "t9.b", ());
        let _ga = a.lock();
        let _gb = b.lock();
        drop((_gb, _ga));
        let d = dot();
        assert!(d.contains("digraph lock_order"));
        assert!(d.contains("\"t9.a\""));
        assert!(d.contains("\"t9.a\" -> \"t9.b\""));
    }

    #[test]
    fn rwlock_participates_in_ordering() {
        let rw = RwLock::new(10, "t10.rw", 1);
        let m = Mutex::new(20, "t10.m", ());
        {
            let _r = rw.read();
            let _g = m.lock();
        }
        {
            let _w = rw.write();
        }
        let rep = report();
        assert!(rep.edges.iter().any(|e| e.from == "t10.rw" && e.to == "t10.m"));
        let c = rep.classes.iter().find(|c| c.name == "t10.rw").unwrap();
        assert_eq!(c.acquisitions, 2);
    }

    #[test]
    fn try_lock_failure_records_nothing() {
        let m = Mutex::new(30, "t11.m", ());
        let _g = m.lock();
        assert!(m.try_lock().is_none());
        drop(_g);
        let rep = report();
        let c = rep.classes.iter().find(|c| c.name == "t11.m").unwrap();
        assert_eq!(c.acquisitions, 1, "failed try_lock must not count");
    }
}
