//! Report types returned by [`crate::report`]. Compiled in both modes so
//! callers can consume reports unconditionally; without the `check`
//! feature every report is empty.

/// Per-class acquisition and hold-time statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassStats {
    pub name: String,
    pub level: u16,
    /// Source location of the first acquisition observed.
    pub first_site: String,
    pub acquisitions: u64,
    /// Longest single hold, in nanoseconds (condvar waits excluded).
    pub max_hold_ns: u64,
    pub total_hold_ns: u64,
}

/// One observed ordering edge: a lock of class `to` was acquired while a
/// lock of class `from` was held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeReport {
    pub from: String,
    pub to: String,
    /// Acquisition site of the held (`from`) lock when first observed.
    pub from_site: String,
    /// Acquisition site of the `to` lock when first observed.
    pub to_site: String,
    pub count: u64,
}

/// A cycle in the class order graph — a potential deadlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleReport {
    /// The classes on the cycle, starting at the edge that closed it.
    pub classes: Vec<String>,
    /// Acquisition site of the held lock of the closing edge.
    pub held_site: String,
    /// Acquisition site that closed the cycle.
    pub acquire_site: String,
}

/// A lock acquired at a lower (more outer) level than one already held,
/// or a reentrant same-class acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelViolation {
    pub held: String,
    pub held_level: u16,
    pub held_site: String,
    pub acquired: String,
    pub acquired_level: u16,
    pub acquire_site: String,
    /// True when `held` and `acquired` are the same class (possible
    /// self-deadlock), false for a plain hierarchy inversion.
    pub same_class: bool,
}

/// A blocking call entered while syncguard locks were held, outside any
/// [`crate::permit_blocking`] scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingViolation {
    /// Label passed to [`crate::enter_blocking`] (e.g. `mq::send`).
    pub label: String,
    /// Classes held at the time, outermost first.
    pub held: Vec<String>,
    pub site: String,
}

/// Everything syncguard observed since process start (or [`crate::reset`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub classes: Vec<ClassStats>,
    pub edges: Vec<EdgeReport>,
    pub cycles: Vec<CycleReport>,
    pub level_violations: Vec<LevelViolation>,
    pub blocking_violations: Vec<BlockingViolation>,
}

impl Report {
    /// No cycles, no hierarchy inversions, no unvetted blocking calls.
    pub fn is_clean(&self) -> bool {
        self.cycles.is_empty()
            && self.level_violations.is_empty()
            && self.blocking_violations.is_empty()
    }
}
