//! The repo-wide lock hierarchy (outermost first, lower value = outer).
//!
//! A thread may only acquire locks at the *same or a higher* level than
//! every lock it already holds. The tiers, from outermost to innermost:
//!
//! ```text
//! SIM_DRIVER      DES worker-process mutex (workloads): wraps a whole
//!                 commit-worker step, so it sits outside everything the
//!                 step can touch.
//! REGION          barrier slot — serializes region-wide dependent
//!                 operations (rmdir/readdir); held across publish-buffer
//!                 flushes, marker sends and the dependent op itself.
//! CLIENT_VIEW     pacon client merged-region map, region directory.
//! CLIENT_MEMO     pacon client parent-existence memo.
//! REGION_STATE    region-core maps: removed_dirs, staging,
//!                 pending_writebacks, worker slots, thread registry.
//! WAL             per-node durable commit log (pacon CommitWal). Taken
//!                 before the publish buffer so an append can be ordered
//!                 ahead of the buffered send it covers.
//! PUBLISH         per-node publish (group-commit) buffers. Held across
//!                 the queue send and the barrier-epoch read, so it
//!                 orders before BARRIER and QUEUE.
//! BARRIER         barrier-board state (epoch/reached counters).
//! REDELIVERY      mq publisher-side redelivery buffer (unacked sends);
//!                 held across the queue send it is redelivering.
//! QUEUE           mq PUSH/PULL queue state; PUB/SUB hub.
//! QUEUE_SUB       PUB/SUB per-subscriber buffers (locked under the hub).
//! ROUTE           memkv epoch router (ring membership + live-migration
//!                 state); read-held across the shard ops it routes, so
//!                 it sits just outside SHARD.
//! SHARD           memkv cache shards.
//! FS_CLIENT       per-client fs caches: dfs dentry cache, indexfs bulk
//!                 buffer.
//! FS_CLIENT_LEASE indexfs lease cache (locked under the bulk buffer).
//! BACKEND         dfs namespace, data-server chunks, lsmkv database.
//! BACKEND_META    dfs seen-cache (idempotent-replay identities); taken
//!                 per-op while the namespace lock is held.
//! STATS           simnet counters — innermost; safe to touch while
//!                 holding anything.
//! ```
//!
//! Gaps between values are deliberate: new locks slot in without
//! renumbering. `tools/lint` enforces that locks are only constructed
//! through syncguard, so every lock site declares its tier.

pub const SIM_DRIVER: u16 = 5;
pub const REGION: u16 = 10;
pub const CLIENT_VIEW: u16 = 12;
pub const CLIENT_MEMO: u16 = 14;
pub const REGION_STATE: u16 = 16;
pub const WAL: u16 = 28;
pub const PUBLISH: u16 = 30;
pub const BARRIER: u16 = 40;
pub const REDELIVERY: u16 = 45;
pub const QUEUE: u16 = 50;
pub const QUEUE_SUB: u16 = 55;
pub const ROUTE: u16 = 58;
pub const SHARD: u16 = 60;
pub const FS_CLIENT: u16 = 70;
pub const FS_CLIENT_LEASE: u16 = 72;
pub const BACKEND: u16 = 80;
pub const BACKEND_META: u16 = 84;
pub const STATS: u16 = 90;

/// Machine-readable level table, outermost first. This is the metadata
/// export the static analyzer (`tools/lint`) resolves `level::NAME`
/// tokens against, so the declared hierarchy has exactly one source of
/// truth. Keep in sync with the constants above (checked by test).
pub const ALL: &[(&str, u16)] = &[
    ("SIM_DRIVER", SIM_DRIVER),
    ("REGION", REGION),
    ("CLIENT_VIEW", CLIENT_VIEW),
    ("CLIENT_MEMO", CLIENT_MEMO),
    ("REGION_STATE", REGION_STATE),
    ("WAL", WAL),
    ("PUBLISH", PUBLISH),
    ("BARRIER", BARRIER),
    ("REDELIVERY", REDELIVERY),
    ("QUEUE", QUEUE),
    ("QUEUE_SUB", QUEUE_SUB),
    ("ROUTE", ROUTE),
    ("SHARD", SHARD),
    ("FS_CLIENT", FS_CLIENT),
    ("FS_CLIENT_LEASE", FS_CLIENT_LEASE),
    ("BACKEND", BACKEND),
    ("BACKEND_META", BACKEND_META),
    ("STATS", STATS),
];

/// Level value for a constant name (`"WAL"` → `28`).
pub fn value_of(name: &str) -> Option<u16> {
    ALL.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

/// Constant name for a level value (`28` → `"WAL"`).
pub fn name_of(value: u16) -> Option<&'static str> {
    ALL.iter().find(|(_, v)| *v == value).map(|&(n, _)| n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_strictly_ascending_and_total() {
        assert!(ALL.windows(2).all(|w| w[0].1 < w[1].1), "levels must ascend");
        assert_eq!(value_of("WAL"), Some(WAL));
        assert_eq!(name_of(STATS), Some("STATS"));
        assert_eq!(value_of("NOPE"), None);
    }
}
