//! Release-mode implementation: `#[inline]` delegation to `parking_lot`.
//! The level/name arguments are accepted for API parity and discarded;
//! the wrapper structs carry no extra state.

use std::time::Instant;

use parking_lot as pl;

use crate::report::Report;

/// True when lock-order checking is compiled in.
#[inline]
pub fn check_enabled() -> bool {
    false
}

pub type MutexGuard<'a, T> = pl::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = pl::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = pl::RwLockWriteGuard<'a, T>;
pub type WaitTimeoutResult = pl::WaitTimeoutResult;

pub struct Mutex<T: ?Sized>(pl::Mutex<T>);

impl<T> Mutex<T> {
    #[inline]
    pub fn new(_level: u16, _name: &'static str, value: T) -> Self {
        Self(pl::Mutex::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock()
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock()
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(pl::RwLock<T>);

impl<T> RwLock<T> {
    #[inline]
    pub fn new(_level: u16, _name: &'static str, value: T) -> Self {
        Self(pl::RwLock::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read()
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write()
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[derive(Default)]
pub struct Condvar(pl::Condvar);

impl Condvar {
    #[inline]
    pub const fn new() -> Self {
        Self(pl::Condvar::new())
    }

    #[inline]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.0.wait(guard)
    }

    #[inline]
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        self.0.wait_until(guard, deadline)
    }

    #[inline]
    pub fn notify_one(&self) -> bool {
        self.0.notify_one()
    }

    #[inline]
    pub fn notify_all(&self) -> usize {
        self.0.notify_all()
    }
}

/// No-op without the `check` feature.
#[inline]
pub fn enter_blocking(_label: &'static str) {}

/// Without the `check` feature this just runs `f`.
#[inline]
pub fn permit_blocking<R>(f: impl FnOnce() -> R) -> R {
    f()
}

/// Empty without the `check` feature.
#[inline]
pub fn report() -> Report {
    Report::default()
}

/// Empty graph without the `check` feature.
pub fn dot() -> String {
    String::from("digraph lock_order {\n}\n")
}

/// No-op without the `check` feature.
#[inline]
pub fn reset() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_basics() {
        assert!(!check_enabled());
        let m = Mutex::new(10, "p.m", 1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(20, "p.rw", vec![1]);
        rw.write().push(2);
        assert_eq!(rw.read().len(), 2);
        assert!(report().is_clean());
        enter_blocking("noop");
        assert_eq!(permit_blocking(|| 7), 7);
    }
}
