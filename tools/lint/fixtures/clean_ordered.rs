// Clean fixture: two locks nested in ascending level order — the
// analyzer must record the edge and raise nothing. Analyzed as
// `crates/pacon/src/fix_clean.rs`.
use syncguard::{level, Mutex};

pub struct Ordered {
    fine: Mutex<u64>,
    coarse: Mutex<u64>,
}

impl Ordered {
    pub fn new() -> Ordered {
        Ordered {
            fine: Mutex::new(level::REGION, "fix.fine", 0),
            coarse: Mutex::new(level::SHARD, "fix.coarse", 0),
        }
    }

    pub fn aligned(&self) -> u64 {
        let lo = self.fine.lock();
        let hi = self.coarse.lock();
        *lo + *hi
    }
}
