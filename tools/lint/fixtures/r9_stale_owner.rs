// Seeded violation for R9: the advisory owner from `shard_node` is
// cached and acted on with no `ring_epoch` re-check — a live reshard
// can remap the key right after the lookup, so the batch lands on the
// pre-migration node. Analyzed as `crates/pacon/src/fix_r9.rs`.
pub fn group_by_owner(cluster: &KvCluster, keys: &[&[u8]]) -> Vec<(NodeId, usize)> {
    let mut groups = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let owner = cluster.shard_node(key);
        groups.push((owner, i));
    }
    groups
}

// Green: the same grouping, but the cached owners are validated against
// the ring epoch before use — a bump discards the plan.
pub fn group_with_epoch_check(cluster: &KvCluster, keys: &[&[u8]]) -> Option<Vec<(NodeId, usize)>> {
    let before = cluster.ring_epoch();
    let mut groups = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        groups.push((cluster.shard_node(key), i));
    }
    if cluster.ring_epoch() != before {
        return None;
    }
    Some(groups)
}

// Green: a deliberate advisory use with a written-down reason.
pub fn owner_for_metrics(cluster: &KvCluster, key: &[u8]) -> NodeId {
    // Telemetry label only: a stale owner mislabels one sample, it
    // never routes an op. lint: allow(stale-owner)
    cluster.shard_node(key)
}
