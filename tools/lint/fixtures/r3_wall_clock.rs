// Seeded violation for R3: wall-clock time in deterministic simulator
// code. Analyzed as `crates/qsim/src/fix_r3.rs`.
pub fn stamp() -> u128 {
    let t = Instant::now();
    t.elapsed().as_nanos()
}
