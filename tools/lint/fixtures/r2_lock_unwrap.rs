// Seeded violation for R2: `.lock().unwrap()` in library code.
// Analyzed as `crates/qsim/src/fix_r2.rs` (non-core crate so the
// unwrap does not also feed the R4 budget).
pub fn peek(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}
