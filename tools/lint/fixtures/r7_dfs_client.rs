// Support file for the R7 fixture: the dfs-side mutator the pacon
// fixture calls. Analyzed as `crates/dfs/src/fix_client.rs`.
pub struct DfsClient {
    root: String,
}

impl DfsClient {
    pub fn mkdir(&self, path: &str) -> bool {
        !path.is_empty() && !self.root.is_empty()
    }
}
