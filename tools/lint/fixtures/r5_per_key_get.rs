// Seeded violation for R5: per-key cache get inside a loop in pacon
// library code. Analyzed as `crates/pacon/src/fix_r5.rs`.
pub fn warm(cache: &MetaCache, keys: &[&str]) {
    for key in keys {
        let _ = cache.get(key);
    }
}
