// Seeded violation for R4: `.unwrap()` in core-crate library code.
// Analyzed as `crates/memkv/src/fix_r4.rs`; the engine reports these
// as a per-file count for the driver's budget check.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().unwrap()
}
