// Seeded violation for R7: a pacon function mutating the dfs namespace
// outside the commit path. Analyzed as `crates/pacon/src/fix_r7.rs`,
// resolved against `r7_dfs_client.rs`.
pub struct Mounter {
    dfs: DfsClient,
}

impl Mounter {
    pub fn ensure_root(&self) {
        self.dfs.mkdir("/pacon");
    }
}
