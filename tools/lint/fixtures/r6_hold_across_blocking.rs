// Seeded violation for R6: a blocking channel send while a syncguard
// guard is live. Analyzed as `crates/pacon/src/fix_r6.rs`.
use syncguard::{level, Mutex};

pub struct Outbox {
    inner: Mutex<u64>,
    tx: Sender<u64>,
}

impl Outbox {
    pub fn new(tx: Sender<u64>) -> Outbox {
        Outbox { inner: Mutex::new(level::WAL, "fix.outbox", 0), tx }
    }

    pub fn push(&self) {
        let held = self.inner.lock();
        self.tx.send(*held).ok();
    }
}
