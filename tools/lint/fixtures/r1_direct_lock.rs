// Seeded violation for R1: direct lock construction outside syncguard.
// Analyzed as `crates/pacon/src/fix_r1.rs`.
use std::sync::Mutex;
use parking_lot::RwLock;

pub fn build() -> Mutex<u64> {
    Mutex::new(0)
}

pub fn build_rw() -> RwLock<u64> {
    RwLock::new(0)
}
