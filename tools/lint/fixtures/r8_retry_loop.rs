// Seeded violation for R8: a fault-surface cache call retried in a
// bare loop — no attempt budget, no backoff — so a crashed node spins
// this function forever. Analyzed as `crates/pacon/src/fix_r8.rs`.
pub fn spin_until_up(cache: &MetaCache, key: &str) -> Vec<u8> {
    loop {
        if let Ok(v) = cache.try_get(key) {
            return v;
        }
    }
}

// Green: the same retry gated on the policy's budget/deadline envelope
// (`next_backoff` returns `None` once either is exhausted) — R8 must
// stay silent here.
pub fn retry_with_policy(cache: &MetaCache, policy: &RetryPolicy, key: &str) -> Option<Vec<u8>> {
    let mut attempt = 0;
    let mut slept = 0;
    loop {
        if let Ok(v) = cache.try_get(key) {
            return Some(v);
        }
        let delay = policy.next_backoff(attempt, slept, 7)?;
        slept += delay;
        attempt += 1;
    }
}

// Green: a `for` over a key set is a bounded sweep, not a retry — one
// attempt per key.
pub fn sweep(cache: &MetaCache, keys: &[&str]) {
    for key in keys {
        let _ = cache.try_delete(key);
    }
}

// Green: a deliberate free-running retry with a written-down reason.
pub fn drain(kv: &KvClient, key: &str) {
    loop {
        // Shutdown path: the node is already fenced, so the loop ends
        // with the queue. lint: allow(retry-loop)
        if kv.try_remove(key).is_ok() {
            return;
        }
    }
}
