// Seeded lock-order inversion: SHARD (level 60) is taken first, then
// REGION (level 10) — levels must not decrease, so the analyzer must
// flag the second acquisition and point back at the first. Analyzed as
// `crates/pacon/src/fix_inversion.rs`.
use syncguard::{level, Mutex};

pub struct Tangle {
    coarse: Mutex<u64>,
    fine: Mutex<u64>,
}

impl Tangle {
    pub fn new() -> Tangle {
        Tangle {
            coarse: Mutex::new(level::SHARD, "fix.coarse", 0),
            fine: Mutex::new(level::REGION, "fix.fine", 0),
        }
    }

    pub fn crossed(&self) -> u64 {
        let hi = self.coarse.lock();
        let lo = self.fine.lock();
        *hi + *lo
    }
}
