//! Cross-check against the observed runtime lock graph: every edge the
//! instrumented `lock_hierarchy` test reports at runtime (the DESIGN §7
//! DOT dump) must also be found statically. The static graph is a
//! superset — it sees paths the runtime workload never exercises — so
//! the check is one-directional: runtime ⊆ static.

use std::path::{Path, PathBuf};

use tools_lint::{analyze, collect_workspace, Rule};

/// The 14 hold-while-acquiring edges observed at runtime by
/// `SYNCGUARD_DOT=1 cargo test --features syncguard/check --test
/// lock_hierarchy` (DESIGN.md §7). Update alongside DESIGN when the
/// runtime graph legitimately changes.
const RUNTIME_EDGES: &[(&str, &str)] = &[
    ("pacon.barrier.slot", "dfs.client.dentries"),
    ("pacon.barrier.slot", "dfs.namespace"),
    ("pacon.barrier.slot", "memkv.shard"),
    ("pacon.barrier.slot", "mq.queue"),
    ("pacon.barrier.slot", "pacon.barrier.state"),
    ("pacon.barrier.slot", "pacon.client.parent_memo"),
    ("pacon.barrier.slot", "pacon.region.pending_writebacks"),
    ("pacon.barrier.slot", "pacon.region.publish_buf"),
    ("pacon.barrier.slot", "pacon.region.removed_dirs"),
    ("pacon.barrier.slot", "pacon.region.staging"),
    ("pacon.barrier.slot", "simnet.counters"),
    ("pacon.region.publish_buf", "mq.queue"),
    ("pacon.region.publish_buf", "pacon.barrier.state"),
    ("pacon.region.publish_buf", "simnet.counters"),
];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("tools/lint lives two levels below the repo root")
        .to_path_buf()
}

#[test]
fn static_graph_covers_all_runtime_edges() {
    let files = collect_workspace(&repo_root()).expect("workspace readable");
    let a = analyze(&files).expect("workspace parses");

    let missing: Vec<_> = RUNTIME_EDGES
        .iter()
        .filter(|(from, to)| {
            !a.graph.edges.iter().any(|e| e.from == *from && e.to == *to)
        })
        .collect();
    assert!(
        missing.is_empty(),
        "runtime edges absent from the static graph: {missing:?}\n\
         static edges: {:?}",
        a.graph.edges.iter().map(|e| (&e.from, &e.to)).collect::<Vec<_>>()
    );
}

#[test]
fn workspace_has_no_lock_order_findings() {
    let files = collect_workspace(&repo_root()).expect("workspace readable");
    let a = analyze(&files).expect("workspace parses");
    let inversions: Vec<_> =
        a.findings.iter().filter(|f| f.rule == Rule::LockOrder).collect();
    assert!(inversions.is_empty(), "lock-order findings in the tree: {inversions:#?}");
}

#[test]
fn every_runtime_class_is_declared_statically() {
    let files = collect_workspace(&repo_root()).expect("workspace readable");
    let a = analyze(&files).expect("workspace parses");
    let mut classes: Vec<&str> = RUNTIME_EDGES
        .iter()
        .flat_map(|(f, t)| [*f, *t])
        .collect();
    classes.sort_unstable();
    classes.dedup();
    for class in classes {
        assert!(
            a.graph.nodes.iter().any(|(c, _, _)| c == class),
            "runtime lock class `{class}` not found among static decls"
        );
    }
}
