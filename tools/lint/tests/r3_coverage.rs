//! R3 (wall-clock ban) coverage of the event-engine hot path.
//!
//! The timer wheel, the raw scheduler churn bench and the latency
//! histograms are the code most tempted to reach for `Instant::now()` —
//! the first two because they exist to be timed, the histograms because
//! they talk about latency. All three live in deterministic sim crates
//! where wall clocks would break trace equivalence, so this test pins
//! both directions on the *real* sources:
//!
//! 1. the checked-in files carry zero R3 findings and zero
//!    `lint: allow` markers, and
//! 2. the rule actually covers them — a wall-clock call injected into
//!    each file fires R3 (coverage, not silence-by-accident).

use tools_lint::{analyze, Rule};

/// The hot-path files under the wall-clock ban, repo-relative.
const COVERED: &[&str] = &[
    "crates/qsim/src/wheel.rs",
    "crates/qsim/src/sched_bench.rs",
    "crates/qsim/src/engine.rs",
    "crates/simnet/src/stats.rs",
];

fn repo_file(rel: &str) -> String {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    std::fs::read_to_string(format!("{root}/{rel}"))
        .unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

#[test]
fn engine_hot_path_is_wall_clock_clean_with_no_allow_markers() {
    for rel in COVERED {
        let src = repo_file(rel);
        assert!(
            !src.contains("lint: allow"),
            "{rel}: the event-engine hot path must not carry allow markers"
        );
        let a = analyze(&[(rel.to_string(), src)]).expect("source parses");
        let r3: Vec<_> = a.findings.iter().filter(|f| f.rule == Rule::R3WallClock).collect();
        assert!(r3.is_empty(), "{rel}: unexpected R3 findings {r3:?}");
    }
}

#[test]
fn injected_wall_clock_in_engine_hot_path_fires_r3() {
    for rel in COVERED {
        let mut src = repo_file(rel);
        if !src.ends_with('\n') {
            src.push('\n');
        }
        // The injection lands on the first line past the current text.
        let injected_line = src.lines().count() + 1;
        src.push_str("fn injected_probe() -> std::time::Duration { std::time::Instant::now().elapsed() }\n");
        let a = analyze(&[(rel.to_string(), src)]).expect("source still parses");
        let r3: Vec<_> = a.findings.iter().filter(|f| f.rule == Rule::R3WallClock).collect();
        assert_eq!(
            r3.len(),
            1,
            "{rel}: injected Instant::now() must fire exactly one R3 finding, got {r3:?}"
        );
        assert_eq!(r3[0].line, injected_line, "{rel}: finding must point at the injection");
    }
}
