//! Seeded-violation fixtures: one deliberately broken source per rule
//! R1–R7 plus a two-lock inversion, fed through the full `analyze`
//! pipeline under virtual repo paths. Each test asserts the rule fires
//! at the seeded line — and, for the inversion, that the finding
//! carries BOTH sites (acquire site + holder site via `related`).

use tools_lint::{analyze, Analysis, Rule};

fn fixture(name: &str) -> String {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures");
    std::fs::read_to_string(format!("{dir}/{name}")).expect("fixture readable")
}

/// Run `analyze` over fixtures mapped to virtual repo-relative paths.
fn run(files: &[(&str, &str)]) -> Analysis {
    let files: Vec<(String, String)> = files
        .iter()
        .map(|(rel, fixture_name)| (rel.to_string(), fixture(fixture_name)))
        .collect();
    analyze(&files).expect("fixtures parse")
}

fn lines_of(a: &Analysis, rule: Rule) -> Vec<usize> {
    a.findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

#[test]
fn r1_direct_lock_fixture_fires() {
    let a = run(&[("crates/pacon/src/fix_r1.rs", "r1_direct_lock.rs")]);
    // One finding per offending line: the std::sync import and the
    // parking_lot import.
    assert_eq!(lines_of(&a, Rule::R1DirectLock), vec![3, 4], "{:?}", a.findings);
}

#[test]
fn r2_lock_unwrap_fixture_fires() {
    let a = run(&[("crates/qsim/src/fix_r2.rs", "r2_lock_unwrap.rs")]);
    assert_eq!(lines_of(&a, Rule::R2LockUnwrap), vec![5], "{:?}", a.findings);
}

#[test]
fn r3_wall_clock_fixture_fires() {
    let a = run(&[("crates/qsim/src/fix_r3.rs", "r3_wall_clock.rs")]);
    assert_eq!(lines_of(&a, Rule::R3WallClock), vec![4], "{:?}", a.findings);
}

#[test]
fn r4_unwrap_fixture_is_counted() {
    let a = run(&[("crates/memkv/src/fix_r4.rs", "r4_unwrap.rs")]);
    // R4 surfaces as a per-file budget count, not a finding.
    assert_eq!(a.unwrap_counts.get("crates/memkv/src/fix_r4.rs"), Some(&2));
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

#[test]
fn r5_per_key_get_fixture_fires() {
    let a = run(&[("crates/pacon/src/fix_r5.rs", "r5_per_key_get.rs")]);
    assert_eq!(lines_of(&a, Rule::R5PerKeyGetLoop), vec![5], "{:?}", a.findings);
}

#[test]
fn r6_hold_across_blocking_fixture_fires() {
    let a = run(&[("crates/pacon/src/fix_r6.rs", "r6_hold_across_blocking.rs")]);
    assert_eq!(lines_of(&a, Rule::R6HoldAcrossBlocking), vec![17], "{:?}", a.findings);
    let f = &a.findings[0];
    // The finding names the held class and points back at the
    // acquisition that made the send dangerous.
    assert!(f.message.contains("fix.outbox"), "{}", f.message);
    assert!(
        f.related.iter().any(|s| s.line == 16),
        "expected holder site at line 16: {:?}",
        f.related
    );
}

#[test]
fn r7_commit_bypass_fixture_fires() {
    let a = run(&[
        ("crates/dfs/src/fix_client.rs", "r7_dfs_client.rs"),
        ("crates/pacon/src/fix_r7.rs", "r7_commit_bypass.rs"),
    ]);
    assert_eq!(lines_of(&a, Rule::R7CommitPathBypass), vec![10], "{:?}", a.findings);
    // The same call made from under src/commit/ is the commit path
    // itself and must NOT fire.
    let b = run(&[
        ("crates/dfs/src/fix_client.rs", "r7_dfs_client.rs"),
        ("crates/pacon/src/commit/fix_r7.rs", "r7_commit_bypass.rs"),
    ]);
    assert!(lines_of(&b, Rule::R7CommitPathBypass).is_empty(), "{:?}", b.findings);
}

#[test]
fn r8_retry_loop_fixture_fires() {
    let a = run(&[("crates/pacon/src/fix_r8.rs", "r8_retry_loop.rs")]);
    // Only the bare spin fires: the policy-gated loop (next_backoff in
    // the same function) and the allow-marked drain stay silent.
    assert_eq!(lines_of(&a, Rule::R8UnboundedRetryLoop), vec![6], "{:?}", a.findings);
    assert!(a.findings[0].message.contains("next_backoff"), "{}", a.findings[0].message);
    // The same source outside the core crates is not the lint's
    // business (a bench may poll freely).
    let b = run(&[("crates/bench/src/fix_r8.rs", "r8_retry_loop.rs")]);
    assert!(lines_of(&b, Rule::R8UnboundedRetryLoop).is_empty(), "{:?}", b.findings);
}

#[test]
fn r9_stale_owner_fixture_fires() {
    let a = run(&[("crates/pacon/src/fix_r9.rs", "r9_stale_owner.rs")]);
    // Only the unchecked grouping fires: the epoch-validated variant
    // and the allow-marked telemetry lookup stay silent.
    assert_eq!(lines_of(&a, Rule::R9StaleOwner), vec![8], "{:?}", a.findings);
    assert!(a.findings[0].message.contains("ring_epoch"), "{}", a.findings[0].message);
    // Inside memkv the cluster consults its own ring under the route
    // lock — the rule must not fire on the implementation itself.
    let b = run(&[("crates/memkv/src/fix_r9.rs", "r9_stale_owner.rs")]);
    assert!(lines_of(&b, Rule::R9StaleOwner).is_empty(), "{:?}", b.findings);
    // Outside the core crates the lookup is not the lint's business.
    let c = run(&[("crates/bench/src/fix_r9.rs", "r9_stale_owner.rs")]);
    assert!(lines_of(&c, Rule::R9StaleOwner).is_empty(), "{:?}", c.findings);
}

#[test]
fn inverted_two_lock_fixture_reports_both_sites() {
    let a = run(&[("crates/pacon/src/fix_inversion.rs", "inversion_two_locks.rs")]);
    let inv: Vec<_> = a.findings.iter().filter(|f| f.rule == Rule::LockOrder).collect();
    assert_eq!(inv.len(), 1, "{:?}", a.findings);
    let f = inv[0];
    // Acquire site: `self.fine.lock()` at line 22; holder site:
    // `self.coarse.lock()` at line 21 — both must be reported.
    assert_eq!((f.file.as_str(), f.line), ("crates/pacon/src/fix_inversion.rs", 22));
    assert_eq!(f.related.len(), 1, "{f:?}");
    assert_eq!(
        (f.related[0].file.as_str(), f.related[0].line),
        ("crates/pacon/src/fix_inversion.rs", 21)
    );
    assert!(f.message.contains("inversion"), "{}", f.message);
    assert!(f.message.contains("fix.coarse") && f.message.contains("fix.fine"), "{}", f.message);
    // The offending edge is still recorded in the graph.
    assert!(a.graph.edges.iter().any(|e| e.from == "fix.coarse" && e.to == "fix.fine"));
}

#[test]
fn clean_ordered_fixture_is_silent_but_edged() {
    let a = run(&[("crates/pacon/src/fix_clean.rs", "clean_ordered.rs")]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    // Ascending REGION -> SHARD nesting is legal and must appear as a
    // graph edge with both witness sites.
    let e = a
        .graph
        .edges
        .iter()
        .find(|e| e.from == "fix.fine" && e.to == "fix.coarse")
        .expect("edge recorded");
    assert_eq!(e.from_site.line, 20);
    assert_eq!(e.to_site.line, 21);
}
