//! Golden-file tests: the JSON and DOT artifacts for a fixed fixture
//! corpus are byte-compared against checked-in goldens, pinning the
//! serialization format CI consumes. Regenerate after an intentional
//! format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p tools-lint --test golden
//! ```

use tools_lint::{analyze, dot, to_json};

/// A corpus exercising every artifact section: findings with related
/// sites (inversion, R6), unwrap counts (R4), graph nodes and edges
/// (clean + inversion), and the via-chain-free same-function edges.
const CORPUS: &[(&str, &str)] = &[
    ("crates/memkv/src/fix_r4.rs", "r4_unwrap.rs"),
    ("crates/pacon/src/fix_clean.rs", "clean_ordered.rs"),
    ("crates/pacon/src/fix_inversion.rs", "inversion_two_locks.rs"),
    ("crates/pacon/src/fix_r6.rs", "r6_hold_across_blocking.rs"),
];

fn manifest(path: &str) -> String {
    format!("{}/{path}", env!("CARGO_MANIFEST_DIR"))
}

fn artifacts() -> (String, String) {
    let files: Vec<(String, String)> = CORPUS
        .iter()
        .map(|(rel, name)| {
            let src = std::fs::read_to_string(manifest(&format!("fixtures/{name}")))
                .expect("fixture readable");
            (rel.to_string(), src)
        })
        .collect();
    let a = analyze(&files).expect("corpus parses");
    (to_json(&a), dot(&a.graph))
}

fn check(golden_rel: &str, actual: &str) {
    let path = manifest(golden_rel);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {golden_rel} ({e}) — run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "{golden_rel} drifted — if the change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p tools-lint --test golden"
    );
}

#[test]
fn json_artifact_matches_golden() {
    let (json, _) = artifacts();
    check("tests/golden/analysis.json", &json);
}

#[test]
fn dot_artifact_matches_golden() {
    let (_, dot_out) = artifacts();
    check("tests/golden/lock_graph.dot", &dot_out);
}
