//! Shared data model: rules, findings, and the facts the extractor
//! produces per function (events, calls, acquisitions, lock
//! declarations) for the resolver and graph passes to consume.

use std::fmt;

/// Crates whose non-test code may not call `.unwrap()` (rule R4).
pub const CORE_CRATES: &[&str] = &["memkv", "mq", "pacon", "dfs", "lsmkv"];

/// Crates whose library code must stay on virtual time (rule R3).
pub const DETERMINISTIC_CRATES: &[&str] = &["qsim", "simnet"];

/// Which lint rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// Direct lock construction outside syncguard.
    R1DirectLock,
    /// `.lock().unwrap()`-style patterns in library code.
    R2LockUnwrap,
    /// Wall-clock time in deterministic simulator code.
    R3WallClock,
    /// `.unwrap()` in core-crate library code beyond the allowlist.
    R4Unwrap,
    /// Per-key cache/kv `get` calls inside a loop in pacon library code.
    R5PerKeyGetLoop,
    /// Blocking call (send/recv/fsync-class) while a syncguard guard is
    /// live, without a `permit_blocking` wrapper.
    R6HoldAcrossBlocking,
    /// Mds/cluster mutation from pacon outside the commit entry points.
    R7CommitPathBypass,
    /// Retry loop around a fault-surface cache/kv call with no bounded
    /// budget or backoff (`RetryPolicy::next_backoff`-style) in sight.
    R8UnboundedRetryLoop,
    /// `shard_node(..)` consulted outside `crates/memkv` in a function
    /// that never re-checks `ring_epoch()` — the advisory owner can go
    /// stale across a live reshard.
    R9StaleOwner,
    /// Static may-hold-while-acquiring edge that inverts the declared
    /// lock-level hierarchy.
    LockOrder,
}

impl Rule {
    /// Stable slug used in JSON output and `// lint: allow(<slug>)`
    /// markers.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::R1DirectLock => "direct-lock",
            Rule::R2LockUnwrap => "lock-unwrap",
            Rule::R3WallClock => "wall-clock",
            Rule::R4Unwrap => "unwrap",
            Rule::R5PerKeyGetLoop => "per-key-get",
            Rule::R6HoldAcrossBlocking => "hold-across-blocking",
            Rule::R7CommitPathBypass => "commit-path",
            Rule::R8UnboundedRetryLoop => "retry-loop",
            Rule::R9StaleOwner => "stale-owner",
            Rule::LockOrder => "lock-order",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::R1DirectLock => "R1 direct-lock",
            Rule::R2LockUnwrap => "R2 lock-unwrap",
            Rule::R3WallClock => "R3 wall-clock",
            Rule::R4Unwrap => "R4 unwrap",
            Rule::R5PerKeyGetLoop => "R5 per-key-get-loop",
            Rule::R6HoldAcrossBlocking => "R6 hold-across-blocking",
            Rule::R7CommitPathBypass => "R7 commit-path-bypass",
            Rule::R8UnboundedRetryLoop => "R8 retry-loop",
            Rule::R9StaleOwner => "R9 stale-owner",
            Rule::LockOrder => "lock-order",
        };
        f.write_str(s)
    }
}

/// A source location: repo-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    pub file: String,
    pub line: usize,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// One lint hit. `related` carries the other half of two-site findings
/// (e.g. the holder's acquisition site for a lock-order inversion).
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub message: String,
    pub related: Vec<Site>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)?;
        for r in &self.related {
            write!(f, " (see {r})")?;
        }
        Ok(())
    }
}

/// Lock flavour, used to disambiguate binder names (`.lock()` can only
/// hit a Mutex, `.read()`/`.write()` only an RwLock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
}

/// A syncguard lock construction site:
/// `Mutex::new(level::X, "class.name", ...)`.
#[derive(Debug, Clone)]
pub struct LockDecl {
    pub class: String,
    pub kind: LockKind,
    pub level_name: String,
    pub level: u16,
    /// The `let` binding or struct-literal field the lock lands in, if
    /// the declaration site makes it syntactically evident.
    pub binder: Option<String>,
    /// `impl` self type enclosing the declaration, if any.
    pub owner: Option<String>,
    pub site: Site,
}

impl LockDecl {
    /// Last dot-segment of the class name — a second lookup key for
    /// acquisition receivers (`"pacon.region.publish_buf"` →
    /// `"publish_buf"`).
    pub fn alias(&self) -> &str {
        self.class.rsplit('.').next().unwrap_or(&self.class)
    }
}

/// One link of a receiver chain after the base: `.field` or
/// `.method(...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Link {
    Field(String),
    Method(String),
}

/// Base of a receiver chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Base {
    /// `self.…`
    SelfVal,
    /// `ident.…` (local or parameter).
    Ident(String),
    /// No receiver: free function or `Type::func(...)` (see
    /// `Call::qualifier`).
    None,
}

/// A call the extractor saw inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    pub base: Base,
    /// Chain links strictly before the called method.
    pub links: Vec<Link>,
    /// `Type` for `Type::name(...)` calls.
    pub qualifier: Option<String>,
    pub name: String,
    pub line: usize,
    /// The argument list was non-empty (distinguishes thread
    /// `handle.join()` from `path.join(seg)`).
    pub has_args: bool,
    /// `let v = <chain ending in this call>;` — the local the result is
    /// bound to, used to type later calls through `v`.
    pub bind_var: Option<String>,
    /// Inside a `syncguard::permit_blocking(|| ...)` closure.
    pub in_permit: bool,
    /// Number of enclosing `for`/`while`/`loop` bodies.
    pub loop_depth: u32,
    /// Number of enclosing `while`/`loop` bodies only — the constructs
    /// with no structural iteration bound (R8 targets these; a `for`
    /// over a key set retries nothing).
    pub spin_depth: u32,
}

/// How a guard was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqMode {
    Lock,
    Read,
    Write,
}

impl AcqMode {
    pub fn kind(self) -> LockKind {
        match self {
            AcqMode::Lock => LockKind::Mutex,
            AcqMode::Read | AcqMode::Write => LockKind::RwLock,
        }
    }
}

/// A `.lock()` / `.read()` / `.write()` acquisition site.
#[derive(Debug, Clone)]
pub struct Acq {
    /// Lookup key for the lock declaration: the last field link before
    /// the acquiring method, else the base identifier.
    pub recv_key: String,
    pub mode: AcqMode,
    pub line: usize,
    /// `let g = …` binding holding the guard, if any (scope-lived);
    /// `None` means the guard is a temporary (statement-lived).
    pub guard_var: Option<String>,
    pub in_permit: bool,
}

/// Body events in source order; `Open`/`Close` are brace scopes,
/// `Stmt` is a top-level `;`. Indices refer into `FnFacts::{acqs,calls}`.
#[derive(Debug, Clone)]
pub enum Event {
    Open,
    Close,
    Stmt,
    LoopOpen,
    LoopClose,
    Acq(usize),
    Call(usize),
    Drop(String),
}

/// Everything the extractor knows about one function.
#[derive(Debug, Clone)]
pub struct FnFacts {
    pub file: String,
    pub crate_name: String,
    pub name: String,
    /// `impl` self type, simplified.
    pub self_ty: Option<String>,
    pub line: usize,
    /// Parameters (binding name if simple, simplified type).
    pub params: Vec<(Option<String>, String)>,
    /// Simplified return type.
    pub ret: Option<String>,
    pub events: Vec<Event>,
    pub calls: Vec<Call>,
    pub acqs: Vec<Acq>,
}

/// One static may-hold-while-acquiring edge.
#[derive(Debug, Clone)]
pub struct GraphEdge {
    pub from: String,
    pub to: String,
    pub from_site: Site,
    pub to_site: Site,
    /// Call chain from the holder's function to the acquisition, empty
    /// for same-function edges.
    pub via: Vec<String>,
}

/// The extracted lock graph: every declared class plus every edge.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// (class, level, declaration site), sorted by (level, class).
    pub nodes: Vec<(String, u16, Site)>,
    /// Sorted by (from, to); one witness per ordered pair.
    pub edges: Vec<GraphEdge>,
}

/// Result of a whole-workspace analysis.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    /// `.unwrap()` count per file (R4 — budget-checked by the driver).
    pub unwrap_counts: std::collections::BTreeMap<String, usize>,
    pub graph: LockGraph,
    pub stats: Stats,
}

#[derive(Debug, Clone, Default)]
pub struct Stats {
    pub files: usize,
    pub fns: usize,
    pub lock_decls: usize,
    pub acq_sites: usize,
    /// Acquisitions whose receiver could not be mapped to a declared
    /// lock class (locals the extractor cannot type).
    pub unresolved_acqs: usize,
}
