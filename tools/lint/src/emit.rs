//! Hand-rolled JSON serialization for the analysis artifact (no serde
//! in the dependency budget). Output ordering is fully deterministic:
//! findings sorted by (file, line, rule, message), map keys from
//! BTreeMaps, graph nodes/edges pre-sorted by the graph pass.

use crate::model::{Analysis, Site};

pub fn to_json(a: &Analysis) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"findings\": [");
    for (i, f) in a.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"related\": [{}]}}",
            str_lit(f.rule.slug()),
            str_lit(&f.file),
            f.line,
            str_lit(&f.message),
            f.related.iter().map(site_json).collect::<Vec<_>>().join(", ")
        ));
    }
    if !a.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"unwrap_counts\": {");
    for (i, (file, n)) in a.unwrap_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {}", str_lit(file), n));
    }
    if !a.unwrap_counts.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"graph\": {\n    \"nodes\": [");
    for (i, (class, level, site)) in a.graph.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n      {{\"class\": {}, \"level\": {}, \"decl\": {}}}",
            str_lit(class),
            level,
            site_json(site)
        ));
    }
    out.push_str("\n    ],\n    \"edges\": [");
    for (i, e) in a.graph.edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n      {{\"from\": {}, \"to\": {}, \"holder_site\": {}, \"acquire_site\": {}, \"via\": [{}]}}",
            str_lit(&e.from),
            str_lit(&e.to),
            site_json(&e.from_site),
            site_json(&e.to_site),
            e.via.iter().map(|v| str_lit(v)).collect::<Vec<_>>().join(", ")
        ));
    }
    out.push_str(&format!(
        "\n    ]\n  }},\n  \"stats\": {{\"files\": {}, \"fns\": {}, \"lock_decls\": {}, \
         \"acq_sites\": {}, \"unresolved_acqs\": {}}}\n}}\n",
        a.stats.files, a.stats.fns, a.stats.lock_decls, a.stats.acq_sites, a.stats.unresolved_acqs
    ));
    out
}

fn site_json(s: &Site) -> String {
    format!("{{\"file\": {}, \"line\": {}}}", str_lit(&s.file), s.line)
}

fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
