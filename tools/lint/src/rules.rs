//! Rule implementations. R1–R4 are token-pattern rules over the
//! flattened (test-filtered) token stream; R5 and R7 are fact rules
//! over extracted function bodies; R6 and the lock-order check live in
//! `graph.rs` because they need guard liveness.

use crate::extract::{crate_of, FileFacts, FlatKind, FlatTok};
use crate::model::{Base, Finding, Link, Rule, CORE_CRATES, DETERMINISTIC_CRATES};
use crate::resolve::Workspace;

const LOCK_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// R1–R4 over one file's token stream. Returns findings plus the R4
/// `.unwrap()` count (budget-checked by the driver against the
/// allowlist rather than reported directly).
pub fn token_rules(f: &FileFacts) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let mut unwraps = 0usize;
    let krate = f.crate_name.as_deref();
    let r1_applies = krate != Some("syncguard");
    let r3_applies = krate.is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));
    let r4_applies = krate.is_some_and(|c| CORE_CRATES.contains(&c));
    let toks = &f.flat;
    // R1 findings deduplicate per line (a `use` list can name two lock
    // types; one finding per line matches the v1 behaviour).
    let mut r1_lines: Vec<usize> = Vec::new();

    let push = |rule: Rule, line: usize, message: String, findings: &mut Vec<Finding>| {
        if !f.allows(line, rule.slug()) {
            findings.push(Finding { rule, file: f.rel.clone(), line, message, related: Vec::new() });
        }
    };

    for i in 0..toks.len() {
        let line = toks[i].line;
        match &toks[i].kind {
            FlatKind::Ident(id) => {
                // R1: any parking_lot reference.
                if r1_applies && id == "parking_lot" && !r1_lines.contains(&line) {
                    r1_lines.push(line);
                    push(
                        Rule::R1DirectLock,
                        line,
                        "direct lock use `parking_lot` — construct locks through syncguard"
                            .to_string(),
                        &mut findings,
                    );
                }
                // R1: `std::sync::Mutex` / `std::sync::{.., RwLock, ..}`.
                if r1_applies && id == "std" && path_next(toks, i) == Some("sync") {
                    let after = i + 6; // std :: sync :: <target>
                    if ident_at(toks, after).is_some_and(|t| LOCK_TYPES.contains(&t)) {
                        let l = toks[after].line;
                        if !r1_lines.contains(&l) {
                            r1_lines.push(l);
                            push(
                                Rule::R1DirectLock,
                                l,
                                format!(
                                    "direct lock use `std::sync::{}` — construct locks \
                                     through syncguard",
                                    ident_at(toks, after).expect("checked")
                                ),
                                &mut findings,
                            );
                        }
                    } else if matches!(
                        toks.get(after).map(|t| &t.kind),
                        Some(FlatKind::Open(syn::Delimiter::Brace))
                    ) {
                        // Use-tree group: scan to the matching close.
                        let mut depth = 1usize;
                        let mut j = after + 1;
                        while depth > 0 {
                            match toks.get(j).map(|t| &t.kind) {
                                Some(FlatKind::Open(_)) => depth += 1,
                                Some(FlatKind::Close(_)) => depth -= 1,
                                Some(FlatKind::Ident(t)) if LOCK_TYPES.contains(&t.as_str()) => {
                                    let l = toks[j].line;
                                    if !r1_lines.contains(&l) {
                                        r1_lines.push(l);
                                        push(
                                            Rule::R1DirectLock,
                                            l,
                                            format!(
                                                "std::sync lock import `{t}` — construct \
                                                 locks through syncguard"
                                            ),
                                            &mut findings,
                                        );
                                    }
                                }
                                None => break,
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                }
                // R3: wall-clock in deterministic crates.
                if r3_applies {
                    if id == "Instant" && path_next(toks, i) == Some("now") {
                        push(
                            Rule::R3WallClock,
                            line,
                            "`Instant::now()` in deterministic simulator code — use \
                             virtual time"
                                .to_string(),
                            &mut findings,
                        );
                    } else if id == "SystemTime" {
                        push(
                            Rule::R3WallClock,
                            line,
                            "`SystemTime` in deterministic simulator code — use virtual time"
                                .to_string(),
                            &mut findings,
                        );
                    }
                }
            }
            FlatKind::Punct('.') => {
                // `.lock().unwrap()` / `.read().expect(..)` — R2.
                if let Some((m, rest)) = empty_call(toks, i + 1) {
                    if matches!(m, "lock" | "read" | "write") {
                        if let Some(FlatTok { kind: FlatKind::Punct('.'), .. }) = toks.get(rest) {
                            if let Some(u) = ident_at(toks, rest + 1) {
                                if u == "unwrap" || u == "expect" {
                                    push(
                                        Rule::R2LockUnwrap,
                                        line,
                                        format!(
                                            "`.{m}().{u}(..)` in library code — syncguard \
                                             locks are non-poisoning"
                                        ),
                                        &mut findings,
                                    );
                                }
                            }
                        }
                    }
                    // `.unwrap()` — R4 count.
                    if r4_applies && m == "unwrap" && !f.allows(line, Rule::R4Unwrap.slug()) {
                        unwraps += 1;
                    }
                }
            }
            _ => {}
        }
    }
    (findings, unwraps)
}

/// Is `toks[i] ':' ':' <ident>` — returning the ident after a `::`.
fn path_next(toks: &[FlatTok], i: usize) -> Option<&str> {
    if toks.get(i + 1)?.is_punct(':') && toks.get(i + 2)?.is_punct(':') {
        ident_at(toks, i + 3)
    } else {
        None
    }
}

fn ident_at(toks: &[FlatTok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(FlatKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Match `<ident> ( )` at `i`; returns the ident and the index past the
/// close paren.
fn empty_call(toks: &[FlatTok], i: usize) -> Option<(&str, usize)> {
    let name = ident_at(toks, i)?;
    if toks.get(i + 1)?.kind == FlatKind::Open(syn::Delimiter::Parenthesis)
        && toks.get(i + 2)?.kind == FlatKind::Close(syn::Delimiter::Parenthesis)
    {
        Some((name, i + 3))
    } else {
        None
    }
}

/// R5: per-key `cache.get(..)` / `kv.get(..)` / `kv().get(..)` inside a
/// loop body, pacon library code only.
pub fn r5(f: &FileFacts) -> Vec<Finding> {
    let mut findings = Vec::new();
    if f.crate_name.as_deref() != Some("pacon") {
        return findings;
    }
    for ff in &f.fns {
        for call in &ff.calls {
            if call.name != "get" || call.loop_depth == 0 {
                continue;
            }
            let recv = match call.links.last() {
                Some(Link::Field(n)) | Some(Link::Method(n)) => n.as_str(),
                None => match &call.base {
                    Base::Ident(n) => n.as_str(),
                    _ => continue,
                },
            };
            if !matches!(recv, "cache" | "kv") {
                continue;
            }
            if f.allows(call.line, Rule::R5PerKeyGetLoop.slug()) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::R5PerKeyGetLoop,
                file: f.rel.clone(),
                line: call.line,
                message: format!(
                    "per-key `{recv}.get(..)` inside a loop — batch the keys with \
                     multi_get, or mark the line `lint: allow(per-key-get)`"
                ),
                related: Vec::new(),
            });
        }
    }
    findings
}

/// R8: a `try_*` cache/kv call (the fault surface — these return
/// `NodeDown`-class errors when a node is crashed or partitioned)
/// inside a `while`/`loop` body, in a function that shows no evidence
/// of a bounded retry envelope. A free-running retry turns a dead node
/// into a hot spin (and, under the virtual clock, a livelock): every
/// such loop must consult `RetryPolicy`-style backoff — whose
/// `next_backoff` bounds both the attempt budget and the deadline — or
/// carry an explicit `lint: allow(retry-loop)` justification. `for`
/// loops are exempt: their iteration is structurally bounded (a sweep
/// over keys is not a retry).
pub fn r8(f: &FileFacts) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !f.crate_name.as_deref().is_some_and(|c| CORE_CRATES.contains(&c)) {
        return findings;
    }
    for ff in &f.fns {
        // Evidence of a bounded envelope anywhere in the function:
        // `next_backoff` / `backoff_ns` gate every delay on the budget
        // and deadline, so their presence marks a policied loop.
        let has_backoff = ff.calls.iter().any(|c| c.name.contains("backoff"));
        if has_backoff {
            continue;
        }
        for call in &ff.calls {
            if call.spin_depth == 0 || !call.name.starts_with("try_") {
                continue;
            }
            let recv = match call.links.last() {
                Some(Link::Field(n)) | Some(Link::Method(n)) => n.as_str(),
                None => match &call.base {
                    Base::Ident(n) => n.as_str(),
                    _ => continue,
                },
            };
            if !matches!(recv, "cache" | "kv") {
                continue;
            }
            if f.allows(call.line, Rule::R8UnboundedRetryLoop.slug()) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::R8UnboundedRetryLoop,
                file: f.rel.clone(),
                line: call.line,
                message: format!(
                    "`{recv}.{}(..)` retried in a loop with no bounded budget or \
                     backoff — gate the retry on RetryPolicy::next_backoff, or mark \
                     the line `lint: allow(retry-loop)` with a justification",
                    call.name
                ),
                related: Vec::new(),
            });
        }
    }
    findings
}

/// R9: `shard_node(..)` consulted outside `crates/memkv` in a function
/// that never re-checks `ring_epoch()`. The owner `shard_node` returns
/// is advisory — the authoritative routing decision is taken under the
/// route lock inside the cluster's client ops — so code that caches the
/// `NodeId` (for batching, affinity, metrics) can act on a pre-reshard
/// owner once a live join/leave bumps the epoch. Every such use must
/// either re-check `ring_epoch` in the same function (and discard the
/// cached owner on a bump) or carry an explicit
/// `lint: allow(stale-owner)` justification. Inside `memkv` the rule is
/// moot: the cluster consults the ring under its own lock.
pub fn r9(f: &FileFacts) -> Vec<Finding> {
    let mut findings = Vec::new();
    let krate = f.crate_name.as_deref();
    if !krate.is_some_and(|c| CORE_CRATES.contains(&c)) || krate == Some("memkv") {
        return findings;
    }
    for ff in &f.fns {
        // Evidence the function is epoch-aware: any `ring_epoch()` call
        // means the cached owner is validated before use.
        if ff.calls.iter().any(|c| c.name == "ring_epoch") {
            continue;
        }
        for call in &ff.calls {
            if call.name != "shard_node" {
                continue;
            }
            if f.allows(call.line, Rule::R9StaleOwner.slug()) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::R9StaleOwner,
                file: f.rel.clone(),
                line: call.line,
                message: "`shard_node(..)` owner cached without a `ring_epoch` re-check — \
                          a live reshard can remap the key after this lookup; re-check the \
                          epoch before acting on the node, or mark the line \
                          `lint: allow(stale-owner)` with a justification"
                    .to_string(),
                related: Vec::new(),
            });
        }
    }
    findings
}

/// Point mutations on the dfs surface — everything that changes
/// namespace state outside the sanctioned batch/idempotent entry
/// points.
const DFS_MUTATORS: &[&str] =
    &["mkdir", "create", "unlink", "rmdir", "write", "set_size", "rename"];

/// R7: pacon code mutating Mds/cluster state outside the commit path.
/// Commits must flow through `apply_batch` / `write_idempotent` /
/// replay so idempotent-replay identities and failure injection see
/// them; a direct `self.dfs.mkdir(..)` bypasses all of it.
pub fn r7(ws: &Workspace, allows: &dyn Fn(&str, usize, &str) -> bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if crate_of(&f.file) != Some("pacon") {
            continue;
        }
        // The replay/commit entry points themselves are the sanctioned
        // writers, and everything under `src/commit/` IS the commit path
        // (the worker applying published batches).
        if f.name.starts_with("replay")
            || f.name.contains("apply_batch")
            || f.file.contains("/commit/")
        {
            continue;
        }
        for (ci, call) in f.calls.iter().enumerate() {
            if !DFS_MUTATORS.contains(&call.name.as_str()) {
                continue;
            }
            let hits_dfs = ws.resolved[i][ci]
                .callees
                .iter()
                .any(|&c| ws.fns[c].crate_name == "dfs");
            if !hits_dfs || allows(&f.file, call.line, Rule::R7CommitPathBypass.slug()) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::R7CommitPathBypass,
                file: f.file.clone(),
                line: call.line,
                message: format!(
                    "direct dfs mutation `{}` outside the commit path — route through \
                     apply_batch/write_idempotent (or mark `lint: allow(commit-path)` \
                     with a justification)",
                    call.name
                ),
                related: Vec::new(),
            });
        }
    }
    findings
}
