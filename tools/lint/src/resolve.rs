//! Workspace-level resolution: joins the per-file facts into indices
//! (structs, methods, lock binders), resolves calls to candidate
//! callees with a type-directed ladder, and computes the transitive
//! `may-acquire` and `may-block` summaries the graph and rule passes
//! consume.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::extract::FileFacts;
use crate::model::{AcqMode, Base, Call, Event, FnFacts, Link, LockDecl, Site};

/// External (unresolvable) callee names treated as blocking primitives
/// for rule R6. `Condvar::wait` is deliberately absent: it releases the
/// mutex while parked.
pub const BLOCKING_PRIMITIVES: &[&str] =
    &["send", "recv", "recv_timeout", "fsync", "sync_all", "sync_data", "join"];

/// Is this call a blocking primitive? `join` only counts with an empty
/// argument list, so thread `handle.join()` matches but `path.join(seg)`
/// never does.
pub fn is_blocking_primitive(call: &Call) -> bool {
    match call.name.as_str() {
        "join" => !call.has_args,
        n => BLOCKING_PRIMITIVES.contains(&n),
    }
}

/// Common collection/iterator method names that must never resolve to
/// repo methods by name alone — `map.get(...)` is not `Mds::get(...)`.
const FALLBACK_DENYLIST: &[&str] = &[
    "get", "insert", "remove", "push", "pop", "len", "is_empty", "clone", "iter", "next",
    "contains", "contains_key", "entry", "extend", "drain", "take", "clear", "new", "default",
    "set", "min", "max", "get_mut", "iter_mut", "into_iter", "keys", "values", "split",
    "join", "send", "recv", "write", "read", "lock", "flush", "sync", "wait", "drop", "get_or_insert_with",
];

/// Upper bound on name-based fallback candidates; more than this means
/// the name is too generic to trust and the call is treated as external.
const FALLBACK_CUTOFF: usize = 6;

/// How a call resolved.
pub struct Resolved {
    pub callees: Vec<usize>,
    /// True when the call could not be mapped to any workspace function.
    pub external: bool,
}

pub struct Workspace {
    pub fns: Vec<FnFacts>,
    pub decls: Vec<LockDecl>,
    /// class → index into `decls` (first declaration wins).
    pub class_decl: BTreeMap<String, usize>,
    /// struct name → fields (merged across files; names are unique in
    /// practice).
    structs: HashMap<String, Vec<(String, String)>>,
    /// (self type, method name) → fn indices.
    methods: HashMap<(String, String), Vec<usize>>,
    /// (crate, free fn name) → fn indices.
    free_fns: HashMap<(String, String), Vec<usize>>,
    /// method/function name → fn indices (fallback).
    by_name: HashMap<String, Vec<usize>>,
    /// Per-function resolved callee lists, index-aligned with
    /// `fns[i].calls`.
    pub resolved: Vec<Vec<Resolved>>,
    /// Per-function transitive acquisition summary:
    /// class → (acquisition site, call chain from this fn).
    pub trans_acq: Vec<BTreeMap<String, (Site, Vec<String>)>>,
    /// Per-function blocking summary: Some((site, chain, label)) if the
    /// function may block outside a permit scope.
    pub trans_blocking: Vec<Option<(Site, Vec<String>, String)>>,
    /// Guard classes a call to this function leaves live in the caller
    /// (guard-returning constructors like `start_barrier`).
    pub carried: Vec<Vec<String>>,
    pub unresolved_acqs: usize,
}

impl Workspace {
    pub fn build(files: &[FileFacts]) -> Workspace {
        let mut fns = Vec::new();
        let mut decls = Vec::new();
        let mut structs: HashMap<String, Vec<(String, String)>> = HashMap::new();
        for f in files {
            fns.extend(f.fns.iter().cloned());
            decls.extend(f.decls.iter().cloned());
            for (name, fields) in &f.structs {
                structs.entry(name.clone()).or_default().extend(fields.iter().cloned());
            }
        }
        let mut class_decl = BTreeMap::new();
        for (i, d) in decls.iter().enumerate() {
            class_decl.entry(d.class.clone()).or_insert(i);
        }
        let mut methods: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut free_fns: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            match &f.self_ty {
                Some(ty) => methods.entry((ty.clone(), f.name.clone())).or_default().push(i),
                None => free_fns
                    .entry((f.crate_name.clone(), f.name.clone()))
                    .or_default()
                    .push(i),
            }
        }
        let mut ws = Workspace {
            fns,
            decls,
            class_decl,
            structs,
            methods,
            free_fns,
            by_name,
            resolved: Vec::new(),
            trans_acq: Vec::new(),
            trans_blocking: Vec::new(),
            carried: Vec::new(),
            unresolved_acqs: 0,
        };
        ws.resolved = (0..ws.fns.len())
            .map(|i| ws.fns[i].calls.iter().map(|c| ws.resolve_call(i, c)).collect())
            .collect();
        ws.compute_trans();
        ws
    }

    /// Map an acquisition's receiver key to a declared lock class.
    /// Ladder: same file → same crate → whole workspace, matching the
    /// declared binder first and the class-name tail as an alias second,
    /// and only declarations of the right flavour (`.lock()` ↔ Mutex).
    pub fn resolve_acq(&self, f: &FnFacts, key: &str, mode: AcqMode) -> Option<usize> {
        let kind = mode.kind();
        let candidates: Vec<usize> = self
            .decls
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == kind && (d.binder.as_deref() == Some(key) || d.alias() == key))
            .map(|(i, _)| i)
            .collect();
        let pick = |pred: &dyn Fn(&LockDecl) -> bool| -> Option<usize> {
            let hits: Vec<usize> =
                candidates.iter().copied().filter(|&i| pred(&self.decls[i])).collect();
            match hits.as_slice() {
                [] => None,
                [one] => Some(*one),
                many => {
                    // Multiple declarations of the same class (e.g.
                    // dfs.namespace) are fine; distinct classes are
                    // ambiguous.
                    let class = &self.decls[many[0]].class;
                    many.iter().all(|&i| self.decls[i].class == *class).then(|| many[0])
                }
            }
        };
        pick(&|d: &LockDecl| d.site.file == f.file)
            .or_else(|| pick(&|d: &LockDecl| crate_of_file(&d.site.file) == Some(f.crate_name.as_str())))
            .or_else(|| pick(&|_| true))
    }

    /// Resolve a call to candidate workspace functions.
    fn resolve_call(&self, caller: usize, call: &Call) -> Resolved {
        self.resolve_call_depth(caller, call, 0)
    }

    fn resolve_call_depth(&self, caller: usize, call: &Call, depth: u32) -> Resolved {
        let f = &self.fns[caller];
        // `Type::func(...)`.
        if let Some(q) = &call.qualifier {
            let ty = if q == "Self" { f.self_ty.clone().unwrap_or_default() } else { q.clone() };
            if let Some(ids) = self.methods.get(&(ty.clone(), call.name.clone())) {
                return Resolved { callees: ids.clone(), external: false };
            }
            return self.fallback(&f.crate_name, &call.name);
        }
        // Type-directed: walk the chain left to right.
        let start_ty: Option<String> = match &call.base {
            Base::SelfVal => f.self_ty.clone(),
            Base::Ident(v) => f
                .params
                .iter()
                .find(|(n, _)| n.as_deref() == Some(v))
                .map(|(_, t)| t.clone())
                .or_else(|| self.guard_local_ty(f, v))
                .or_else(|| self.call_local_ty(caller, v, depth)),
            Base::None => {
                if let Some(ids) = self.free_fns.get(&(f.crate_name.clone(), call.name.clone())) {
                    return Resolved { callees: ids.clone(), external: false };
                }
                return self.fallback(&f.crate_name, &call.name);
            }
        };
        if let Some(mut ty) = start_ty {
            let mut ok = true;
            for link in &call.links {
                let next = match link {
                    Link::Field(field) => self
                        .structs
                        .get(&ty)
                        .and_then(|fs| fs.iter().find(|(n, _)| n == field))
                        .map(|(_, t)| t.clone()),
                    Link::Method(m) => {
                        let ret = self
                            .methods
                            .get(&(ty.clone(), m.clone()))
                            .and_then(|ids| ids.first())
                            .and_then(|&id| self.fns[id].ret.clone());
                        // Guard methods deref to the locked value: with
                        // no real method of that name, `.lock()` /
                        // `.read()` / `.write()` keep the current type.
                        if ret.is_none() && matches!(m.as_str(), "lock" | "read" | "write") {
                            Some(ty.clone())
                        } else {
                            ret
                        }
                    }
                };
                match next {
                    Some(t) => ty = t,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                if let Some(ids) = self.methods.get(&(ty, call.name.clone())) {
                    return Resolved { callees: ids.clone(), external: false };
                }
            }
        }
        self.fallback(&f.crate_name, &call.name)
    }

    /// Type of a call-bound local: `let setup = dfs.client()` gives
    /// `setup` the (unique) return type of the binding call's resolved
    /// callees. Depth-limited so binding chains cannot recurse.
    fn call_local_ty(&self, caller: usize, var: &str, depth: u32) -> Option<String> {
        if depth >= 3 {
            return None;
        }
        let bc =
            self.fns[caller].calls.iter().rev().find(|c| c.bind_var.as_deref() == Some(var))?;
        let r = self.resolve_call_depth(caller, bc, depth + 1);
        let mut rets: Vec<&str> =
            r.callees.iter().filter_map(|&id| self.fns[id].ret.as_deref()).collect();
        rets.sort_unstable();
        rets.dedup();
        match rets.as_slice() {
            [one] => Some(one.to_string()),
            _ => None,
        }
    }

    /// Type of a let-bound guard local: `let g = self.inner.lock()`
    /// gives `g` the lock's inner type (`Mutex<T>` fields simplify to
    /// `T` in the struct index).
    fn guard_local_ty(&self, f: &FnFacts, var: &str) -> Option<String> {
        let acq = f.acqs.iter().find(|a| a.guard_var.as_deref() == Some(var))?;
        self.field_ty(f, &acq.recv_key)
    }

    /// Declared type of a field reachable from this function: the self
    /// type's own field first, then a workspace-unique field name.
    fn field_ty(&self, f: &FnFacts, field: &str) -> Option<String> {
        let own = f.self_ty.as_ref().and_then(|ty| {
            self.structs
                .get(ty)
                .and_then(|fs| fs.iter().find(|(n, _)| n == field))
                .map(|(_, t)| t.clone())
        });
        if own.is_some() {
            return own.filter(|t| !t.is_empty());
        }
        let mut tys: Vec<&str> = self
            .structs
            .values()
            .flat_map(|fs| fs.iter().filter(|(n, t)| n == field && !t.is_empty()))
            .map(|(_, t)| t.as_str())
            .collect();
        tys.sort_unstable();
        tys.dedup();
        match tys.as_slice() {
            [one] => Some(one.to_string()),
            _ => None,
        }
    }

    /// Name-only fallback, restricted to the caller's crate: cross-crate
    /// calls always go through a typed receiver or qualifier, so a bare
    /// name match in another crate is noise, not evidence.
    fn fallback(&self, krate: &str, name: &str) -> Resolved {
        if FALLBACK_DENYLIST.contains(&name) {
            return Resolved { callees: Vec::new(), external: true };
        }
        let same: Vec<usize> = self
            .by_name
            .get(name)
            .map(|ids| {
                ids.iter().copied().filter(|&i| self.fns[i].crate_name == krate).collect()
            })
            .unwrap_or_default();
        if !same.is_empty() && same.len() <= FALLBACK_CUTOFF {
            Resolved { callees: same, external: false }
        } else {
            Resolved { callees: Vec::new(), external: true }
        }
    }

    /// Fixpoint over the call graph: which classes may each function
    /// acquire (directly or transitively), may it block, and which
    /// guards does a call to it leave live in the caller.
    fn compute_trans(&mut self) {
        let n = self.fns.len();
        self.trans_acq = vec![BTreeMap::new(); n];
        self.trans_blocking = vec![None; n];
        self.carried = vec![Vec::new(); n];

        // Direct layer.
        for i in 0..n {
            let f = &self.fns[i];
            let mut dropped: HashSet<String> = HashSet::new();
            for ev in &f.events {
                if let Event::Drop(v) = ev {
                    dropped.insert(v.clone());
                }
            }
            let mut direct_classes: Vec<String> = Vec::new();
            for acq in &f.acqs {
                match self.resolve_acq(f, &acq.recv_key, acq.mode) {
                    Some(d) => {
                        let decl = &self.decls[d];
                        let site = Site { file: f.file.clone(), line: acq.line };
                        self.trans_acq[i]
                            .entry(decl.class.clone())
                            .or_insert((site, Vec::new()));
                        direct_classes.push(decl.class.clone());
                        // A let-bound guard that is never dropped in a
                        // guard-returning function escapes to the caller.
                        if guard_like(f.ret.as_deref()) {
                            if let Some(var) = &acq.guard_var {
                                if !dropped.contains(var)
                                    && !self.carried[i].contains(&decl.class)
                                {
                                    self.carried[i].push(decl.class.clone());
                                }
                            }
                        }
                    }
                    None => self.unresolved_acqs += 1,
                }
            }
            // `fn guard(&self) -> MutexGuard<_> { self.inner.lock() }`:
            // the guard is a tail expression, not a binding.
            if guard_like(self.fns[i].ret.as_deref()) && self.carried[i].is_empty() {
                direct_classes.dedup();
                self.carried[i] = direct_classes;
            }
            for call in &f.calls {
                if call.in_permit {
                    continue;
                }
                let external_blocking = call.name == "enter_blocking"
                    || (is_blocking_primitive(call) && !matches!(call.base, Base::None));
                if external_blocking && self.trans_blocking[i].is_none() {
                    self.trans_blocking[i] = Some((
                        Site { file: f.file.clone(), line: call.line },
                        Vec::new(),
                        call.name.clone(),
                    ));
                }
            }
        }

        // Propagate until stable.
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for (ci, call) in self.fns[i].calls.iter().enumerate() {
                    for &callee in &self.resolved[i][ci].callees {
                        if callee == i {
                            continue;
                        }
                        let step = format!("{}:{}", call.name, call.line);
                        let updates: Vec<(String, Site, Vec<String>)> = self.trans_acq[callee]
                            .iter()
                            .filter(|(class, _)| !self.trans_acq[i].contains_key(*class))
                            .map(|(class, (site, chain))| {
                                let mut c = vec![step.clone()];
                                c.extend(chain.iter().cloned());
                                c.truncate(6);
                                (class.clone(), site.clone(), c)
                            })
                            .collect();
                        for (class, site, chain) in updates {
                            self.trans_acq[i].insert(class, (site, chain));
                            changed = true;
                        }
                        // Guard-returning wrappers hand their callee's
                        // escaped guards onward (`barrier()` returns the
                        // `BarrierGuard` from `start_barrier()`).
                        if guard_like(self.fns[i].ret.as_deref()) {
                            let adds: Vec<String> = self.carried[callee]
                                .iter()
                                .filter(|c| !self.carried[i].contains(c))
                                .cloned()
                                .collect();
                            if !adds.is_empty() {
                                self.carried[i].extend(adds);
                                changed = true;
                            }
                        }
                        if !call.in_permit
                            && self.trans_blocking[i].is_none()
                            && self.trans_blocking[callee].is_some()
                        {
                            let (site, chain, label) =
                                self.trans_blocking[callee].clone().expect("checked");
                            let mut c = vec![step.clone()];
                            c.extend(chain);
                            c.truncate(6);
                            self.trans_blocking[i] = Some((site, c, label));
                            changed = true;
                        }
                    }
                }
            }
        }
    }
}

/// Return types that hand a live guard back to the caller: raw guard
/// types plus repo wrapper structs that embed one (detected by name
/// convention — `BarrierGuard` et al end in `Guard`).
fn guard_like(ret: Option<&str>) -> bool {
    ret.is_some_and(|t| t.ends_with("Guard"))
}

fn crate_of_file(rel: &str) -> Option<&str> {
    crate::extract::crate_of(rel)
}
