//! Per-file fact extraction: parse a source file with the vendored
//! `syn` stand-in, walk every non-test function body into an event
//! stream (scopes, statements, loops, acquisitions, calls, drops), and
//! scan for syncguard lock declarations, struct field types and
//! `// lint: allow(...)` markers.
//!
//! Test code is excluded structurally: `#[cfg(test)]` items and
//! `#[test]` functions never contribute facts or scan tokens, including
//! test functions nested inside non-test `impl` blocks.

use std::collections::{BTreeMap, BTreeSet};

use syn::{Comment, Delimiter, Item, ItemFn, ItemRec, TokenTree};

use crate::model::{Acq, AcqMode, Base, Call, Event, FnFacts, Link, LockDecl, LockKind, Site};

/// A flattened token: groups become explicit open/close markers so
/// pattern rules can match linear sequences like `std :: sync :: Mutex`
/// or `. unwrap ( )` without recursion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatKind {
    Ident(String),
    Punct(char),
    Open(Delimiter),
    Close(Delimiter),
    /// String/byte-string literal (cooked value).
    Str(String),
    /// Any other literal (raw text).
    Lit(String),
}

#[derive(Debug, Clone)]
pub struct FlatTok {
    pub kind: FlatKind,
    pub line: usize,
}

impl FlatTok {
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, FlatKind::Ident(i) if i == s)
    }
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, FlatKind::Punct(p) if *p == c)
    }
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    pub rel: String,
    pub crate_name: Option<String>,
    pub fns: Vec<FnFacts>,
    pub decls: Vec<LockDecl>,
    /// Struct definitions: name → (field, simplified type).
    pub structs: Vec<(String, Vec<(String, String)>)>,
    /// Non-test tokens of the whole file, flattened, for token-pattern
    /// rules (R1–R4).
    pub flat: Vec<FlatTok>,
    /// Line → allowed rule slugs from `// lint: allow(slug)` markers
    /// (the marker covers its own line and the next).
    pub allow: BTreeMap<usize, BTreeSet<String>>,
}

impl FileFacts {
    pub fn allows(&self, line: usize, slug: &str) -> bool {
        self.allow.get(&line).is_some_and(|s| s.contains(slug))
    }
}

/// Which crate (directory under `crates/`) a repo-relative path is in.
/// The workspace root package (`src/`) reports `None`.
pub fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Is this path test code as a whole (integration tests, benches,
/// examples)?
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path.split('/').any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Extract all facts from one source file.
pub fn extract(rel: &str, source: &str) -> Result<FileFacts, syn::Error> {
    let (file, comments) = syn::parse_file(source)?;
    let mut facts = FileFacts {
        rel: rel.to_string(),
        crate_name: crate_of(rel).map(str::to_string),
        allow: allow_markers(&comments),
        ..FileFacts::default()
    };
    walk_items(&file.items, None, &mut facts);
    Ok(facts)
}

/// Parse `lint: allow(slug[, reason])` markers (and the legacy
/// `lint:allow-per-key-get` spelling) out of the comment stream.
fn allow_markers(comments: &[Comment]) -> BTreeMap<usize, BTreeSet<String>> {
    let mut map: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for c in comments {
        let mut slugs: Vec<String> = Vec::new();
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint: allow(") {
            let after = &rest[pos + "lint: allow(".len()..];
            let end = after.find([',', ')']).unwrap_or(after.len());
            let slug = after[..end].trim();
            if !slug.is_empty() {
                slugs.push(slug.to_string());
            }
            rest = after;
        }
        if c.text.contains("lint:allow-per-key-get") {
            slugs.push("per-key-get".to_string());
        }
        for line in [c.line, c.line + 1] {
            map.entry(line).or_default().extend(slugs.iter().cloned());
        }
    }
    map.retain(|_, s| !s.is_empty());
    map
}

fn is_test_fn(f: &ItemFn) -> bool {
    f.attrs.cfg_test || f.attrs.test_fn
}

/// Line range an impl/trait member function covers (signature through
/// body close), for filtering test members out of the impl's raw
/// tokens.
fn fn_line_range(f: &ItemFn) -> (usize, usize) {
    let start = f.sig.span.line;
    let end = f.body.as_ref().map(|b| b.span_close().line).unwrap_or(start);
    (start, end.max(start))
}

fn walk_items(items: &[ItemRec], owner: Option<&str>, facts: &mut FileFacts) {
    for rec in items {
        match &rec.item {
            Item::Fn(f) => {
                if is_test_fn(f) {
                    continue;
                }
                flatten(&rec.tokens, &[], &mut facts.flat);
                scan_decls(&rec.tokens, owner, facts);
                push_fn(f, owner, facts);
            }
            Item::Impl(im) => {
                if im.attrs.cfg_test {
                    continue;
                }
                let excluded: Vec<(usize, usize)> =
                    im.fns.iter().filter(|f| is_test_fn(f)).map(fn_line_range).collect();
                flatten(&rec.tokens, &excluded, &mut facts.flat);
                for f in &im.fns {
                    if is_test_fn(f) {
                        continue;
                    }
                    if let Some(body) = &f.body {
                        scan_decls(&body.stream().trees, Some(&im.self_ty), facts);
                    }
                    push_fn(f, Some(&im.self_ty), facts);
                }
            }
            Item::Trait(tr) => {
                if tr.attrs.cfg_test {
                    continue;
                }
                flatten(&rec.tokens, &[], &mut facts.flat);
                for f in &tr.fns {
                    if is_test_fn(f) {
                        continue;
                    }
                    push_fn(f, Some(&tr.name), facts);
                }
            }
            Item::Mod(m) => {
                if m.attrs.cfg_test {
                    continue;
                }
                if let Some(items) = &m.items {
                    walk_items(items, owner, facts);
                }
            }
            Item::Struct(st) => {
                if st.attrs.cfg_test {
                    continue;
                }
                flatten(&rec.tokens, &[], &mut facts.flat);
                facts.structs.push((st.name.clone(), st.fields.clone()));
            }
            Item::Use(_) | Item::Verbatim(_) => {
                flatten(&rec.tokens, &[], &mut facts.flat);
                scan_decls(&rec.tokens, owner, facts);
            }
        }
    }
}

fn push_fn(f: &ItemFn, owner: Option<&str>, facts: &mut FileFacts) {
    let mut ff = FnFacts {
        file: facts.rel.clone(),
        crate_name: facts.crate_name.clone().unwrap_or_default(),
        name: f.sig.name.clone(),
        self_ty: owner.map(str::to_string),
        line: f.sig.span.line,
        params: f.sig.params.clone(),
        ret: f.sig.ret.clone(),
        events: Vec::new(),
        calls: Vec::new(),
        acqs: Vec::new(),
    };
    if let Some(body) = &f.body {
        let mut w = Walker { facts: &mut ff, loop_depth: 0, spin_depth: 0, permit: 0 };
        w.walk(&body.stream().trees);
    }
    facts.fns.push(ff);
}

/// Flatten token trees in source order, skipping any token whose line
/// falls in an excluded (test member) range.
fn flatten(trees: &[TokenTree], excluded: &[(usize, usize)], out: &mut Vec<FlatTok>) {
    let skip = |line: usize| excluded.iter().any(|&(s, e)| line >= s && line <= e);
    for t in trees {
        match t {
            TokenTree::Group(g) => {
                if !skip(g.span_open().line) {
                    out.push(FlatTok {
                        kind: FlatKind::Open(g.delimiter()),
                        line: g.span_open().line,
                    });
                }
                flatten(&g.stream().trees, excluded, out);
                if !skip(g.span_close().line) {
                    out.push(FlatTok {
                        kind: FlatKind::Close(g.delimiter()),
                        line: g.span_close().line,
                    });
                }
            }
            TokenTree::Ident(i) => {
                if !skip(i.span().line) {
                    out.push(FlatTok {
                        kind: FlatKind::Ident(i.as_str().to_string()),
                        line: i.span().line,
                    });
                }
            }
            TokenTree::Punct(p) => {
                if !skip(p.span().line) {
                    out.push(FlatTok { kind: FlatKind::Punct(p.as_char()), line: p.span().line });
                }
            }
            TokenTree::Literal(l) => {
                if !skip(l.span().line) {
                    let kind = match l.str_value() {
                        Some(v) => FlatKind::Str(v),
                        None => FlatKind::Lit(l.text().to_string()),
                    };
                    out.push(FlatTok { kind, line: l.span().line });
                }
            }
        }
    }
}

/// Scan a token region for `Mutex::new(level::X, "class", ...)` /
/// `RwLock::new(...)` syncguard declarations.
fn scan_decls(trees: &[TokenTree], owner: Option<&str>, facts: &mut FileFacts) {
    let mut flat = Vec::new();
    flatten(trees, &[], &mut flat);
    let mut i = 0;
    while i + 4 < flat.len() {
        let kind = match &flat[i].kind {
            FlatKind::Ident(s) if s == "Mutex" => LockKind::Mutex,
            FlatKind::Ident(s) if s == "RwLock" => LockKind::RwLock,
            _ => {
                i += 1;
                continue;
            }
        };
        if !(flat[i + 1].is_punct(':')
            && flat[i + 2].is_punct(':')
            && flat[i + 3].is_ident("new")
            && flat[i + 4].kind == FlatKind::Open(Delimiter::Parenthesis))
        {
            i += 1;
            continue;
        }
        if let Some(decl) = parse_decl_args(&flat, i, kind, owner, &facts.rel) {
            facts.decls.push(decl);
        }
        i += 5;
    }
}

/// Parse the `(level::X, "class", ...)` argument head and backward-scan
/// for the binder (`let name =`, `name:` struct field, `self.name =`),
/// skipping wrapper constructors like `Arc::new(...)`.
fn parse_decl_args(
    flat: &[FlatTok],
    idx: usize,
    kind: LockKind,
    owner: Option<&str>,
    rel: &str,
) -> Option<LockDecl> {
    // First argument: tokens up to the first depth-0 comma.
    let mut j = idx + 5;
    let mut depth = 0usize;
    let mut first: Vec<&FlatTok> = Vec::new();
    loop {
        let t = flat.get(j)?;
        match &t.kind {
            FlatKind::Open(_) => depth += 1,
            FlatKind::Close(_) => {
                if depth == 0 {
                    return None; // no comma: not a syncguard constructor
                }
                depth -= 1;
            }
            FlatKind::Punct(',') if depth == 0 => break,
            _ => {}
        }
        first.push(t);
        j += 1;
    }
    let (level_name, level) = match first.last().map(|t| &t.kind) {
        Some(FlatKind::Ident(name)) => {
            // `level::NAME` or `syncguard::level::NAME`; require the
            // `level` path segment so arbitrary expressions don't match.
            if !first.iter().any(|t| t.is_ident("level")) {
                return None;
            }
            (name.clone(), syncguard::level::value_of(name)?)
        }
        Some(FlatKind::Lit(text)) => {
            let v: u16 = text.parse().ok()?;
            (syncguard::level::name_of(v).unwrap_or("?").to_string(), v)
        }
        _ => return None,
    };
    // Second argument must be the class string literal.
    let class = match &flat.get(j + 1)?.kind {
        FlatKind::Str(s) => s.clone(),
        _ => return None,
    };
    let line = flat[idx].line;
    let binder = binder_of(flat, idx);
    Some(LockDecl {
        class,
        kind,
        level_name,
        level,
        binder,
        owner: owner.map(str::to_string),
        site: Site { file: rel.to_string(), line },
    })
}

/// Walk backward from a `Mutex::new` match to the nearest enclosing
/// binding: a struct-literal field label, a `let` binding, or a field
/// assignment. `depth` goes negative as the scan exits into ancestor
/// expressions (e.g. out of `Arc::new(` or a `.map(|_| ...)` closure).
fn binder_of(flat: &[FlatTok], idx: usize) -> Option<String> {
    let mut depth: i32 = 0;
    let mut j = idx;
    for _ in 0..60 {
        if j == 0 {
            return None;
        }
        j -= 1;
        match &flat[j].kind {
            FlatKind::Close(_) => depth += 1,
            FlatKind::Open(Delimiter::Brace) if depth <= 0 => return None,
            FlatKind::Open(_) => depth -= 1,
            // Struct-literal label `name: …` — a single colon preceded
            // by an identifier (not a `::` path).
            FlatKind::Punct(':')
                if depth <= 0
                    && j >= 1
                    && !flat[j - 1].is_punct(':')
                    && (j < 2 || !flat[j + 1].is_punct(':')) =>
            {
                if let FlatKind::Ident(name) = &flat[j - 1].kind {
                    return Some(name.clone());
                }
            }
            FlatKind::Punct('=') if depth <= 0 => {
                if let Some(FlatKind::Ident(name)) = flat.get(j - 1).map(|t| &t.kind) {
                    return Some(name.clone());
                }
            }
            FlatKind::Punct(';') if depth <= 0 => return None,
            _ => {}
        }
    }
    None
}

/// Names whose bare call form we treat as entering a permitted-blocking
/// region: everything inside the closure argument is `in_permit`.
const PERMIT_FNS: &[&str] = &["permit_blocking"];

struct Walker<'w> {
    facts: &'w mut FnFacts,
    loop_depth: u32,
    /// Enclosing `while`/`loop` bodies only (no structural bound).
    spin_depth: u32,
    permit: u32,
}

impl Walker<'_> {
    fn walk(&mut self, trees: &[TokenTree]) {
        let mut i = 0;
        let mut pending_loop = false;
        // The pending loop is a `while`/`loop` (unbounded construct).
        let mut pending_spin = false;
        // The next brace opens an `if`/`while` body whose condition
        // temporaries drop before the block runs (unlike `match` and
        // `if let`/`while let`, whose scrutinee temporaries live on).
        let mut pending_cond = false;
        let mut pending_let: Option<String> = None;
        while i < trees.len() {
            match &trees[i] {
                TokenTree::Ident(id) => {
                    let s = id.as_str();
                    match s {
                        "let" => {
                            // `let (mut)? name (= | :)` — anything more
                            // structured is a pattern, not a guard bind.
                            let mut j = i + 1;
                            if matches!(trees.get(j), Some(TokenTree::Ident(m)) if m.as_str() == "mut")
                            {
                                j += 1;
                            }
                            pending_let = match (trees.get(j), trees.get(j + 1)) {
                                (Some(TokenTree::Ident(n)), Some(TokenTree::Punct(p)))
                                    if p.as_char() == '=' || p.as_char() == ':' =>
                                {
                                    Some(n.as_str().to_string())
                                }
                                _ => None,
                            };
                            i += 1;
                        }
                        "for" | "while" | "loop" => {
                            pending_loop = true;
                            pending_spin = s != "for";
                            if s == "while"
                                && !matches!(trees.get(i + 1), Some(TokenTree::Ident(n)) if n.as_str() == "let")
                            {
                                pending_cond = true;
                            }
                            i += 1;
                        }
                        "if" => {
                            if !matches!(trees.get(i + 1), Some(TokenTree::Ident(n)) if n.as_str() == "let")
                            {
                                pending_cond = true;
                            }
                            i += 1;
                        }
                        "drop" => {
                            if let Some(TokenTree::Group(g)) = trees.get(i + 1) {
                                if g.delimiter() == Delimiter::Parenthesis {
                                    if let [TokenTree::Ident(v)] = &g.stream().trees[..] {
                                        self.facts
                                            .events
                                            .push(Event::Drop(v.as_str().to_string()));
                                        i += 2;
                                        continue;
                                    }
                                }
                            }
                            i += 1;
                        }
                        _ if !id.is_lifetime() && chain_starts(trees, i) => {
                            i = self.parse_chain(trees, i, &mut pending_let);
                        }
                        _ => i += 1,
                    }
                }
                TokenTree::Group(g) => {
                    match g.delimiter() {
                        Delimiter::Brace => {
                            if pending_cond {
                                // Condition temporaries die here.
                                pending_cond = false;
                                self.facts.events.push(Event::Stmt);
                            }
                            if pending_loop {
                                pending_loop = false;
                                let spin = std::mem::take(&mut pending_spin);
                                self.facts.events.push(Event::LoopOpen);
                                self.loop_depth += 1;
                                self.spin_depth += spin as u32;
                                self.walk(&g.stream().trees);
                                self.spin_depth -= spin as u32;
                                self.loop_depth -= 1;
                                self.facts.events.push(Event::LoopClose);
                            } else {
                                self.facts.events.push(Event::Open);
                                self.walk(&g.stream().trees);
                                self.facts.events.push(Event::Close);
                            }
                        }
                        _ => self.walk(&g.stream().trees),
                    }
                    i += 1;
                }
                TokenTree::Punct(p) => {
                    if p.as_char() == ';' {
                        self.facts.events.push(Event::Stmt);
                        pending_let = None;
                        pending_loop = false;
                        pending_spin = false;
                        pending_cond = false;
                    }
                    i += 1;
                }
                TokenTree::Literal(_) => i += 1,
            }
        }
    }

    /// Parse a receiver chain starting at `trees[i]` (an identifier):
    /// `self.a.b.method(args).c`, `helper(args)`, `Type::func(args)`,
    /// `x.lock()`. Emits `Call`/`Acq` events and returns the index past
    /// the chain.
    fn parse_chain(
        &mut self,
        trees: &[TokenTree],
        mut i: usize,
        pending_let: &mut Option<String>,
    ) -> usize {
        let first = match &trees[i] {
            TokenTree::Ident(id) => id.as_str().to_string(),
            _ => return i + 1,
        };
        let line = trees[i].span().line;
        i += 1;
        let base;
        let mut links: Vec<Link> = Vec::new();
        let mut last_acq: Option<usize> = None;
        let mut last_call: Option<usize> = None;

        if first == "self" {
            base = Base::SelfVal;
        } else {
            // Collect a `::` path if present.
            let mut path = vec![first];
            while path_sep(trees, i) {
                if let Some(TokenTree::Ident(seg)) = trees.get(i + 2) {
                    path.push(seg.as_str().to_string());
                    i += 3;
                } else {
                    break;
                }
            }
            let name = path.last().expect("path has at least one segment").clone();
            match trees.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    // Free or path-qualified call.
                    if PERMIT_FNS.contains(&name.as_str()) {
                        self.permit += 1;
                        self.walk(&g.stream().trees);
                        self.permit -= 1;
                    } else {
                        let qualifier = if path.len() > 1 {
                            Some(path[path.len() - 2].clone())
                        } else {
                            None
                        };
                        let spawn = name == "spawn";
                        self.push_call(
                            Base::None,
                            Vec::new(),
                            qualifier,
                            name,
                            line,
                            !g.stream().trees.is_empty(),
                        );
                        last_call = Some(self.facts.calls.len() - 1);
                        // `thread::spawn(move || ...)` closures run on
                        // another stack: nothing inside nests under the
                        // caller's guards.
                        if !spawn {
                            self.walk(&g.stream().trees);
                        }
                    }
                    i += 1;
                    base = Base::None;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '.' && path.len() == 1 => {
                    base = Base::Ident(path.pop().expect("single segment"));
                }
                _ => return i, // plain path or identifier, no chain
            }
        }

        // Chain links.
        loop {
            match trees.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '.' => match trees.get(i + 1) {
                    Some(TokenTree::Ident(seg)) => {
                        let seg_line = seg.span().line;
                        let seg = seg.as_str().to_string();
                        match trees.get(i + 2) {
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis =>
                            {
                                let acq_mode = match seg.as_str() {
                                    "lock" => Some(AcqMode::Lock),
                                    "read" => Some(AcqMode::Read),
                                    "write" => Some(AcqMode::Write),
                                    _ => None,
                                };
                                match acq_mode {
                                    Some(mode) if g.stream().trees.is_empty() => {
                                        let key = recv_key(&base, &links);
                                        self.facts.acqs.push(Acq {
                                            recv_key: key,
                                            mode,
                                            line: seg_line,
                                            guard_var: None,
                                            in_permit: self.permit > 0,
                                        });
                                        last_acq = Some(self.facts.acqs.len() - 1);
                                        last_call = None;
                                        self.facts
                                            .events
                                            .push(Event::Acq(self.facts.acqs.len() - 1));
                                    }
                                    _ => {
                                        self.push_call(
                                            base.clone(),
                                            links.clone(),
                                            None,
                                            seg.clone(),
                                            seg_line,
                                            !g.stream().trees.is_empty(),
                                        );
                                        last_acq = None;
                                        last_call = Some(self.facts.calls.len() - 1);
                                        if seg != "spawn" {
                                            self.walk(&g.stream().trees);
                                        }
                                    }
                                }
                                links.push(Link::Method(seg));
                                i += 3;
                            }
                            _ => {
                                links.push(Link::Field(seg));
                                last_call = None;
                                i += 2;
                            }
                        }
                    }
                    Some(TokenTree::Literal(l)) => {
                        links.push(Link::Field(l.text().to_string()));
                        i += 2;
                    }
                    _ => break,
                },
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    // Indexing: the receiver key is unchanged
                    // (`bufs[node].lock()` still resolves via `bufs`).
                    self.walk(&g.stream().trees);
                    i += 1;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '?' => i += 1,
                _ => break,
            }
        }

        // A chain that *ends* on an acquisition and sits on the RHS of a
        // `let` binds the guard to that variable (scope-lived).
        if let Some(a) = last_acq {
            if matches!(links.last(), Some(Link::Method(m)) if m == "lock" || m == "read" || m == "write")
            {
                self.facts.acqs[a].guard_var = pending_let.take();
            }
        }
        // Likewise a chain ending on a call binds the call's result.
        if let Some(c) = last_call {
            self.facts.calls[c].bind_var = pending_let.take();
        }
        i
    }

    fn push_call(
        &mut self,
        base: Base,
        links: Vec<Link>,
        qualifier: Option<String>,
        name: String,
        line: usize,
        has_args: bool,
    ) {
        self.facts.calls.push(Call {
            base,
            links,
            qualifier,
            name,
            line,
            has_args,
            bind_var: None,
            in_permit: self.permit > 0,
            loop_depth: self.loop_depth,
            spin_depth: self.spin_depth,
        });
        self.facts.events.push(Event::Call(self.facts.calls.len() - 1));
    }
}

/// Receiver key for an acquisition: last field link, else the base
/// identifier (`self.core.staging.lock()` → `staging`,
/// `buf.lock()` → `buf`).
fn recv_key(base: &Base, links: &[Link]) -> String {
    for l in links.iter().rev() {
        if let Link::Field(f) = l {
            return f.clone();
        }
    }
    match base {
        Base::Ident(n) => n.clone(),
        Base::SelfVal => "self".to_string(),
        Base::None => String::new(),
    }
}

/// Could `trees[i]` (an identifier) start a chain or call? True when
/// followed by `.`, `::` or `(`.
fn chain_starts(trees: &[TokenTree], i: usize) -> bool {
    match trees.get(i + 1) {
        Some(TokenTree::Punct(p)) if p.as_char() == '.' => {
            // `1.0` floats never reach here (identifier base), but rule
            // out range expressions `a..b`.
            !matches!(trees.get(i + 2), Some(TokenTree::Punct(q)) if q.as_char() == '.')
        }
        Some(TokenTree::Group(g)) => g.delimiter() == Delimiter::Parenthesis,
        Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
            path_sep(trees, i + 1) && matches!(trees.get(i + 3), Some(TokenTree::Ident(_)))
        }
        _ => false,
    }
}

/// Is `trees[i]` the start of a `::` separator followed by an ident?
fn path_sep(trees: &[TokenTree], i: usize) -> bool {
    matches!(
        (trees.get(i), trees.get(i + 1)),
        (Some(TokenTree::Punct(a)), Some(TokenTree::Punct(b)))
            if a.as_char() == ':' && b.as_char() == ':'
    )
}
