#![forbid(unsafe_code)]
//! Repo-wide concurrency lint (no external dependencies).
//!
//! Four rules, each motivated by a class of bug the syncguard work was
//! built to prevent:
//!
//! - **R1** — no direct `std::sync` / `parking_lot` lock construction
//!   outside `crates/syncguard` and `vendor/`. Every lock must go through
//!   syncguard so it carries a lock level and participates in lock-order
//!   checking.
//! - **R2** — no `.lock().unwrap()` / `.lock().expect(..)` (or the
//!   read/write equivalents) in library code. Syncguard locks are
//!   non-poisoning; unwrap-on-lock is both unnecessary and a wedge
//!   hazard when it survives a refactor back to std locks.
//! - **R3** — no `Instant::now()` / `SystemTime` inside `qsim` /
//!   `simnet` library code: the deterministic simulator must take time
//!   from virtual clocks only.
//! - **R4** — no `.unwrap()` in non-test code of the core crates
//!   (`memkv`, `mq`, `pacon`, `dfs`, `lsmkv`), except for per-file
//!   budgets in `unwrap_allowlist.txt`. The allowlist may shrink, never
//!   grow: a file exceeding its budget fails, and a budget larger than
//!   the actual count also fails (tighten it).
//! - **R5** — no per-key `kv.get(` / `cache.get(` calls inside loop
//!   bodies in `crates/pacon` library code: a loop over keys should use
//!   the batched `multi_get` path (one round trip per shard node).
//!   Deliberate exceptions carry a `lint:allow-per-key-get` marker on
//!   the line.
//!
//! Test code — `#[cfg(test)]` blocks, and anything under `tests/`,
//! `benches/` or `examples/` — is exempt from every rule.

use std::fmt;

/// Crates whose non-test code may not call `.unwrap()` (rule R4).
pub const CORE_CRATES: &[&str] = &["memkv", "mq", "pacon", "dfs", "lsmkv"];

/// Crates whose library code must stay on virtual time (rule R3).
pub const DETERMINISTIC_CRATES: &[&str] = &["qsim", "simnet"];

/// Which lint rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Direct lock construction outside syncguard.
    R1DirectLock,
    /// `.lock().unwrap()`-style patterns in library code.
    R2LockUnwrap,
    /// Wall-clock time in deterministic simulator code.
    R3WallClock,
    /// `.unwrap()` in core-crate library code beyond the allowlist.
    R4Unwrap,
    /// Per-key cache/kv `get` calls inside a loop in pacon library code.
    R5PerKeyGetLoop,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::R1DirectLock => "R1 direct-lock",
            Rule::R2LockUnwrap => "R2 lock-unwrap",
            Rule::R3WallClock => "R3 wall-clock",
            Rule::R4Unwrap => "R4 unwrap",
            Rule::R5PerKeyGetLoop => "R5 per-key-get-loop",
        };
        f.write_str(s)
    }
}

/// One lint hit: rule, file, 1-based line, and what matched.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Per-line mask: `true` where the line belongs to a `#[cfg(test)]` item.
///
/// Brace-depth tracker: a `#[cfg(test)]` attribute arms the next opening
/// brace; everything until the matching close brace is test code. Good
/// enough for rustfmt-shaped sources; it does not try to parse strings
/// containing braces beyond skipping obvious literals.
pub fn test_mask(source: &str) -> Vec<bool> {
    let lines: Vec<&str> = source.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut depth: i32 = 0;
    // Depth at which each active #[cfg(test)] region closes.
    let mut test_until: Vec<i32> = Vec::new();
    let mut armed = false;
    for (i, raw) in lines.iter().enumerate() {
        let code = strip_noncode(raw);
        if code.contains("#[cfg(test)]") {
            armed = true;
        }
        let in_test = !test_until.is_empty();
        if in_test || armed {
            mask[i] = in_test;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    if armed {
                        test_until.push(depth);
                        armed = false;
                        mask[i] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_until.last() == Some(&depth) {
                        test_until.pop();
                        mask[i] = true;
                    }
                }
                _ => {}
            }
        }
        if armed {
            // Attribute lines between #[cfg(test)] and the item body.
            mask[i] = true;
        }
    }
    mask
}

/// Per-line mask: `true` where the line is inside a `for`/`while`/`loop`
/// body (the header line itself counts once its brace opens). Same
/// brace-depth approach — and the same rustfmt-shaped-source caveats —
/// as [`test_mask`].
pub fn loop_mask(source: &str) -> Vec<bool> {
    let lines: Vec<&str> = source.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut depth: i32 = 0;
    // Depth at which each enclosing loop body closes.
    let mut loop_until: Vec<i32> = Vec::new();
    let mut armed = false;
    for (i, raw) in lines.iter().enumerate() {
        let code = strip_noncode(raw);
        if is_loop_header(&code) {
            armed = true;
        }
        if !loop_until.is_empty() {
            mask[i] = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    if armed {
                        loop_until.push(depth);
                        armed = false;
                        mask[i] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if loop_until.last() == Some(&depth) {
                        loop_until.pop();
                    }
                }
                _ => {}
            }
        }
    }
    mask
}

/// Does this (comment-stripped) line open a loop? Keywords must sit at
/// a token boundary so `.for_each(` and identifiers like `wait_for ` do
/// not arm the mask, and `for ` additionally needs a following ` in `
/// so `impl Trait for Type` does not read as a loop header.
fn is_loop_header(code: &str) -> bool {
    for kw in ["for ", "while ", "loop {", "loop{"] {
        let mut start = 0;
        while let Some(pos) = code[start..].find(kw) {
            let abs = start + pos;
            let boundary = code[..abs]
                .chars()
                .next_back()
                .map(|p| !p.is_alphanumeric() && p != '_' && p != '.')
                .unwrap_or(true);
            if boundary && (kw != "for " || code[abs..].contains(" in ")) {
                return true;
            }
            start = abs + kw.len();
        }
    }
    false
}

/// Drop `//` comments and the contents of ordinary string literals so
/// brace counting and pattern matching see only code.
fn strip_noncode(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '\'' => {
                // Char literal (or lifetime): skip a possible escaped char
                // so '{' / '}' literals don't skew the depth counter.
                out.push('\'');
                if let Some(&n) = chars.peek() {
                    if n == '\\' {
                        chars.next();
                        chars.next();
                        if chars.peek() == Some(&'\'') {
                            chars.next();
                        }
                    } else if chars.clone().nth(1) == Some('\'') {
                        chars.next();
                        chars.next();
                    }
                }
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Which crate (directory under `crates/`) a repo-relative path is in, if
/// any. The workspace root package (`src/`) reports `None`.
fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Is this path test code as a whole (integration tests, benches,
/// examples)?
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path.split('/').any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Lint one file. `rel_path` is repo-relative with `/` separators.
/// R4 findings are emitted one per `.unwrap()` call; the caller compares
/// their count against the allowlist budget.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if is_test_path(rel_path) {
        return findings;
    }
    let krate = crate_of(rel_path);
    let in_syncguard = krate == Some("syncguard");
    let r3_applies = krate.is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));
    let r4_applies = krate.is_some_and(|c| CORE_CRATES.contains(&c));
    let r5_applies = krate == Some("pacon");
    let mask = test_mask(source);
    let loops = if r5_applies { loop_mask(source) } else { Vec::new() };

    for (i, raw) in source.lines().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let code = strip_noncode(raw);
        let lineno = i + 1;

        if !in_syncguard {
            for pat in [
                "parking_lot::",
                "use parking_lot",
                "std::sync::Mutex",
                "std::sync::RwLock",
            ] {
                if code.contains(pat) {
                    findings.push(Finding {
                        rule: Rule::R1DirectLock,
                        file: rel_path.to_string(),
                        line: lineno,
                        message: format!(
                            "direct lock use `{pat}` — construct locks through syncguard"
                        ),
                    });
                    break;
                }
            }
            if code.contains("use std::sync::")
                && (code.contains("Mutex") || code.contains("RwLock"))
            {
                findings.push(Finding {
                    rule: Rule::R1DirectLock,
                    file: rel_path.to_string(),
                    line: lineno,
                    message: "std::sync lock import — construct locks through syncguard"
                        .to_string(),
                });
            }
        }

        for pat in [
            ".lock().unwrap()",
            ".lock().expect(",
            ".read().unwrap()",
            ".read().expect(",
            ".write().unwrap()",
            ".write().expect(",
        ] {
            if code.contains(pat) {
                findings.push(Finding {
                    rule: Rule::R2LockUnwrap,
                    file: rel_path.to_string(),
                    line: lineno,
                    message: format!(
                        "`{pat}` in library code — syncguard locks are non-poisoning"
                    ),
                });
                break;
            }
        }

        if r3_applies {
            for pat in ["Instant::now()", "SystemTime"] {
                if code.contains(pat) {
                    findings.push(Finding {
                        rule: Rule::R3WallClock,
                        file: rel_path.to_string(),
                        line: lineno,
                        message: format!(
                            "`{pat}` in deterministic simulator code — use virtual time"
                        ),
                    });
                    break;
                }
            }
        }

        if r5_applies
            && loops.get(i).copied().unwrap_or(false)
            && !raw.contains("lint:allow-per-key-get")
        {
            for pat in ["cache.get(", "kv.get(", "kv().get("] {
                if code.contains(pat) {
                    findings.push(Finding {
                        rule: Rule::R5PerKeyGetLoop,
                        file: rel_path.to_string(),
                        line: lineno,
                        message: format!(
                            "per-key `{pat}` inside a loop — batch the keys with \
                             multi_get, or mark the line `lint:allow-per-key-get`"
                        ),
                    });
                    break;
                }
            }
        }

        if r4_applies {
            let mut rest = code.as_str();
            while let Some(pos) = rest.find(".unwrap()") {
                findings.push(Finding {
                    rule: Rule::R4Unwrap,
                    file: rel_path.to_string(),
                    line: lineno,
                    message: "`.unwrap()` in core-crate library code".to_string(),
                });
                rest = &rest[pos + ".unwrap()".len()..];
            }
        }
    }
    findings
}

/// Parse `unwrap_allowlist.txt`: `count<space>path` per line, `#`
/// comments and blank lines ignored.
pub fn parse_allowlist(text: &str) -> Result<Vec<(String, usize)>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, path) = line
            .split_once(' ')
            .ok_or_else(|| format!("allowlist line {}: expected `count path`", i + 1))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count `{count}`", i + 1))?;
        entries.push((path.trim().to_string(), count));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn r1_fires_on_direct_parking_lot() {
        let src = "use parking_lot::Mutex;\nfn f() { let m = parking_lot::Mutex::new(0); }\n";
        let f = lint_source("crates/mq/src/bad.rs", src);
        assert!(f.iter().all(|f| f.rule == Rule::R1DirectLock));
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn r1_fires_on_std_sync_lock() {
        let src = "use std::sync::{Arc, Mutex};\n";
        let f = lint_source("crates/pacon/src/bad.rs", src);
        assert_eq!(rules(&f), vec![Rule::R1DirectLock]);
        // Arc alone is fine.
        let ok = lint_source("crates/pacon/src/good.rs", "use std::sync::Arc;\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn r1_exempts_syncguard() {
        let src = "use parking_lot as pl;\n";
        assert!(lint_source("crates/syncguard/src/checked.rs", src).is_empty());
    }

    #[test]
    fn r2_fires_on_lock_unwrap() {
        let src = "fn f(m: &std::sync::Mutex<u32>) { *m.lock().unwrap() += 1; }\n";
        let f = lint_source("src/thing.rs", src);
        assert!(rules(&f).contains(&Rule::R2LockUnwrap), "{f:?}");
        let src2 = "fn g() { let _ = RW.write().expect(\"poisoned\"); }\n";
        let f2 = lint_source("src/thing.rs", src2);
        assert_eq!(rules(&f2), vec![Rule::R2LockUnwrap]);
    }

    #[test]
    fn r3_fires_only_in_deterministic_crates() {
        let src = "fn now() -> std::time::Instant { Instant::now() }\n";
        let f = lint_source("crates/qsim/src/engine.rs", src);
        assert_eq!(rules(&f), vec![Rule::R3WallClock]);
        assert!(lint_source("crates/mq/src/queue.rs", src).is_empty());
    }

    #[test]
    fn r4_counts_each_unwrap() {
        let src = "fn f() { a().unwrap(); b().unwrap(); }\n";
        let f = lint_source("crates/memkv/src/shard.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == Rule::R4Unwrap));
        // Non-core crates are not under R4.
        assert!(lint_source("crates/qsim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn r5_fires_on_per_key_get_loops_in_pacon() {
        let src = "\
fn warm(cache: &MetaCache, keys: &[&str]) {
    for key in keys {
        let _ = cache.get(key);
    }
}
";
        let f = lint_source("crates/pacon/src/bad.rs", src);
        assert_eq!(rules(&f), vec![Rule::R5PerKeyGetLoop], "{f:?}");
        assert_eq!(f[0].line, 3);
        // Other crates may loop over their own stores freely.
        assert!(lint_source("crates/memkv/src/cluster.rs", src).is_empty());
    }

    #[test]
    fn r5_spares_non_loop_gets_and_marked_lines() {
        let straight = "fn one(cache: &MetaCache) { let _ = cache.get(\"/p\"); }\n";
        assert!(lint_source("crates/pacon/src/ok.rs", straight).is_empty());
        let marked = "\
fn baseline(kv: &KvClient, keys: &[&[u8]]) {
    for key in keys {
        let _ = kv.get(key); // lint:allow-per-key-get — ablation baseline
    }
}
";
        assert!(lint_source("crates/pacon/src/ok.rs", marked).is_empty());
        // `.for_each`, identifiers containing `for`, and `impl Trait
        // for Type` blocks are not loop headers.
        let not_a_loop = "fn f(c: &C) { let x = wait_for (c); c.cache.get(\"/p\"); }\n";
        assert!(lint_source("crates/pacon/src/ok.rs", not_a_loop).is_empty());
        let impl_block = "\
impl FileSystem for PaconClient {
    fn stat(&self, path: &str) -> FsResult<FileStat> {
        match self.cache.get(path) {
            Some((m, _)) => Ok(m.to_stat()),
            None => self.load(path),
        }
    }
}
";
        assert!(lint_source("crates/pacon/src/ok.rs", impl_block).is_empty());
    }

    #[test]
    fn r5_sees_single_line_and_while_loops() {
        let one_liner = "fn f(c: &C, ks: &[K]) { for k in ks { c.kv.get(k); } }\n";
        let f = lint_source("crates/pacon/src/bad.rs", one_liner);
        assert_eq!(rules(&f), vec![Rule::R5PerKeyGetLoop], "{f:?}");
        let wloop = "\
fn f(c: &C) {
    while busy() {
        c.kv().get(b\"k\");
    }
}
";
        let f = lint_source("crates/pacon/src/bad.rs", wloop);
        assert_eq!(rules(&f), vec![Rule::R5PerKeyGetLoop], "{f:?}");
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "\
fn lib() {}

#[cfg(test)]
mod tests {
    use parking_lot::Mutex;
    #[test]
    fn t() {
        x.lock().unwrap();
        y.unwrap();
    }
}
";
        let f = lint_source("crates/mq/src/queue.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn code_after_cfg_test_block_is_linted_again() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}

fn lib() { z.unwrap(); }
";
        let f = lint_source("crates/mq/src/queue.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn integration_tests_and_benches_are_exempt() {
        let src = "fn t() { a.lock().unwrap(); }\nuse parking_lot::Mutex;\n";
        assert!(lint_source("crates/mq/tests/stress.rs", src).is_empty());
        assert!(lint_source("tests/smoke.rs", src).is_empty());
        assert!(lint_source("crates/bench/benches/b.rs", src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "\
// parking_lot::Mutex is banned; .lock().unwrap() too
fn f() { println!(\"parking_lot::Mutex .unwrap()\"); }
";
        let f = lint_source("crates/mq/src/queue.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allowlist_parses_and_rejects_garbage() {
        let text = "# comment\n3 crates/mq/src/queue.rs\n\n1 src/lib.rs\n";
        let e = parse_allowlist(text).unwrap();
        assert_eq!(
            e,
            vec![
                ("crates/mq/src/queue.rs".to_string(), 3),
                ("src/lib.rs".to_string(), 1)
            ]
        );
        assert!(parse_allowlist("nonsense line").is_err());
        assert!(parse_allowlist("x path").is_err());
    }
}
