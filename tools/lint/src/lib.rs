#![forbid(unsafe_code)]
//! Repo-wide concurrency lint, v2: a static protocol analyzer built on
//! the vendored `proc-macro2`/`syn` stand-ins instead of line matching.
//!
//! The engine parses every workspace source file into an item-level
//! AST, walks function bodies into event streams (scopes, statements,
//! loops, lock acquisitions, calls, drops), resolves calls through an
//! intra-workspace call graph, and from that computes the static
//! may-hold-while-acquiring relation over syncguard lock classes. On
//! top of the same facts it enforces:
//!
//! - **R1 direct-lock** — no `std::sync` / `parking_lot` lock use
//!   outside `crates/syncguard`: every lock must declare a level.
//! - **R2 lock-unwrap** — no `.lock().unwrap()` / `.read().expect(..)`
//!   patterns: syncguard locks are non-poisoning.
//! - **R3 wall-clock** — no `Instant::now()` / `SystemTime` inside
//!   `qsim`/`simnet` library code (virtual time only).
//! - **R4 unwrap** — `.unwrap()` budget per file in the core crates,
//!   checked against `unwrap_allowlist.txt` (shrink-only).
//! - **R5 per-key-get** — no per-key `cache.get`/`kv.get` in loop
//!   bodies in `pacon` (use the batched `multi_get` path).
//! - **R6 hold-across-blocking** — no send/recv/fsync-class call while
//!   a syncguard guard is live, found via the call graph, unless
//!   wrapped in `syncguard::permit_blocking`.
//! - **R7 commit-path** — no dfs mutation from `pacon` outside the
//!   `apply_batch`/`write_idempotent`/replay entry points.
//! - **R8 retry-loop** — no `try_*` cache/kv call retried in a loop
//!   without a bounded budget and backoff (`RetryPolicy::next_backoff`)
//!   in core-crate library code.
//! - **R9 stale-owner** — no `shard_node(..)` lookup outside `memkv`
//!   in a function that never re-checks `ring_epoch()`: a live reshard
//!   can remap the key after the lookup, so cached owners must be
//!   epoch-validated.
//! - **lock-order** — every static hold-while-acquiring edge must
//!   descend the level hierarchy declared in
//!   `crates/syncguard/src/level.rs`; inversions report both sites.
//!
//! Deliberate exceptions carry `// lint: allow(<slug>)` on or directly
//! above the line. Test code — `#[cfg(test)]` items, `#[test]` fns, and
//! anything under `tests/`, `benches/` or `examples/` — is exempt from
//! every rule, excluded structurally from the AST walk.

mod emit;
mod extract;
mod graph;
mod model;
mod resolve;
mod rules;

use std::collections::BTreeMap;

pub use extract::{crate_of, extract, is_test_path, FileFacts};
pub use graph::dot;
pub use model::{
    Acq, AcqMode, Analysis, Base, Call, Event, Finding, FnFacts, GraphEdge, Link, LockDecl,
    LockGraph, Rule, Site, Stats, CORE_CRATES, DETERMINISTIC_CRATES,
};
pub use resolve::Workspace;

pub use emit::to_json;

/// Directories scanned for `.rs` files, relative to the repo root.
/// `vendor/` (third-party stand-ins) and `tools/` (this analyzer — its
/// rule patterns appear literally in its own source) are deliberately
/// absent; `tests/`, `benches/` and `examples/` subtrees are exempt
/// from every rule and skipped during collection.
pub const SCAN_ROOTS: &[&str] = &["crates", "src"];

/// Collect every workspace source file under `root`'s scan roots as
/// `(repo-relative path, source)` pairs, sorted by path — the exact
/// input set the driver feeds [`analyze`].
pub fn collect_workspace(root: &std::path::Path) -> Result<Vec<(String, String)>, String> {
    let mut paths = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut paths);
    }
    paths.sort();
    let mut files = Vec::new();
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .expect("scanned file under root")
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {rel}: {e}"))?;
        files.push((rel, source));
    }
    Ok(files)
}

fn collect_rs_files(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name != "target" && name != "tests" && name != "benches" && name != "examples" {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Analyze a whole workspace: `files` are `(repo-relative path, source)`
/// pairs. Test paths are skipped. Returns every finding except R4,
/// which is reported as per-file counts for the driver's budget check.
pub fn analyze(files: &[(String, String)]) -> Result<Analysis, String> {
    let mut facts: Vec<FileFacts> = Vec::new();
    for (rel, source) in files {
        if is_test_path(rel) {
            continue;
        }
        let f = extract(rel, source).map_err(|e| format!("{rel}: {e}"))?;
        facts.push(f);
    }
    facts.sort_by(|a, b| a.rel.cmp(&b.rel));

    let mut analysis = Analysis::default();
    for f in &facts {
        let (mut token_findings, unwraps) = rules::token_rules(f);
        analysis.findings.append(&mut token_findings);
        if unwraps > 0 {
            analysis.unwrap_counts.insert(f.rel.clone(), unwraps);
        }
        analysis.findings.append(&mut rules::r5(f));
        analysis.findings.append(&mut rules::r8(f));
        analysis.findings.append(&mut rules::r9(f));
    }

    let ws = Workspace::build(&facts);
    let by_rel: BTreeMap<&str, &FileFacts> =
        facts.iter().map(|f| (f.rel.as_str(), f)).collect();
    let allows = |file: &str, line: usize, slug: &str| {
        by_rel.get(file).is_some_and(|f| f.allows(line, slug))
    };
    analysis.findings.append(&mut rules::r7(&ws, &allows));
    let g = graph::build(&ws, &allows);
    analysis.findings.extend(g.findings);
    analysis.graph = g.graph;

    analysis.stats = Stats {
        files: facts.len(),
        fns: ws.fns.len(),
        lock_decls: ws.decls.len(),
        acq_sites: ws.fns.iter().map(|f| f.acqs.len()).sum(),
        unresolved_acqs: ws.unresolved_acqs,
    };
    analysis
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message)));
    Ok(analysis)
}

/// Single-file convenience used by the rule tests: token rules plus R5,
/// with R4 reported as one finding per `.unwrap()` (matching the v1
/// interface). Cross-file passes (R6/R7/lock-order) need
/// [`analyze`].
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    if is_test_path(rel_path) {
        return Vec::new();
    }
    let Ok(facts) = extract(rel_path, source) else {
        return Vec::new();
    };
    let (mut findings, unwraps) = rules::token_rules(&facts);
    findings.append(&mut rules::r5(&facts));
    findings.append(&mut rules::r8(&facts));
    findings.append(&mut rules::r9(&facts));
    for _ in 0..unwraps {
        findings.push(Finding {
            rule: Rule::R4Unwrap,
            file: rel_path.to_string(),
            line: 0,
            message: "`.unwrap()` in core-crate library code".to_string(),
            related: Vec::new(),
        });
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Parse `unwrap_allowlist.txt`: `count<space>path` per line, `#`
/// comments and blank lines ignored.
pub fn parse_allowlist(text: &str) -> Result<Vec<(String, usize)>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, path) = line
            .split_once(' ')
            .ok_or_else(|| format!("allowlist line {}: expected `count path`", i + 1))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count `{count}`", i + 1))?;
        entries.push((path.trim().to_string(), count));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn r1_fires_on_direct_parking_lot() {
        let src = "use parking_lot::Mutex;\nfn f() { let m = parking_lot::Mutex::new(0); }\n";
        let f = lint_source("crates/mq/src/bad.rs", src);
        assert!(f.iter().all(|f| f.rule == Rule::R1DirectLock));
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn r1_fires_on_std_sync_lock() {
        let src = "use std::sync::{Arc, Mutex};\n";
        let f = lint_source("crates/pacon/src/bad.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::R1DirectLock]);
        // Arc alone is fine.
        let ok = lint_source("crates/pacon/src/good.rs", "use std::sync::Arc;\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn r1_exempts_syncguard() {
        let src = "use parking_lot as pl;\n";
        assert!(lint_source("crates/syncguard/src/checked.rs", src).is_empty());
    }

    #[test]
    fn r2_fires_on_lock_unwrap() {
        let src = "fn f(m: &std::sync::Mutex<u32>) { *m.lock().unwrap() += 1; }\n";
        let f = lint_source("src/thing.rs", src);
        assert!(rules_of(&f).contains(&Rule::R2LockUnwrap), "{f:?}");
        let src2 = "fn g() { let _ = RW.write().expect(\"poisoned\"); }\n";
        let f2 = lint_source("src/thing.rs", src2);
        assert_eq!(rules_of(&f2), vec![Rule::R2LockUnwrap]);
    }

    #[test]
    fn r3_fires_only_in_deterministic_crates() {
        let src = "fn now() -> std::time::Instant { Instant::now() }\n";
        let f = lint_source("crates/qsim/src/engine.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::R3WallClock]);
        assert!(lint_source("crates/mq/src/queue.rs", src).is_empty());
    }

    #[test]
    fn r4_counts_each_unwrap() {
        let src = "fn f() { a().unwrap(); b().unwrap(); }\n";
        let f = lint_source("crates/memkv/src/shard.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == Rule::R4Unwrap));
        // Non-core crates are not under R4.
        assert!(lint_source("crates/qsim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn r5_fires_on_per_key_get_loops_in_pacon() {
        let src = "\
fn warm(cache: &MetaCache, keys: &[&str]) {
    for key in keys {
        let _ = cache.get(key);
    }
}
";
        let f = lint_source("crates/pacon/src/bad.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::R5PerKeyGetLoop], "{f:?}");
        assert_eq!(f[0].line, 3);
        // Other crates may loop over their own stores freely.
        assert!(lint_source("crates/memkv/src/cluster.rs", src).is_empty());
    }

    #[test]
    fn r5_spares_non_loop_gets_and_marked_lines() {
        let straight = "fn one(cache: &MetaCache) { let _ = cache.get(\"/p\"); }\n";
        assert!(lint_source("crates/pacon/src/ok.rs", straight).is_empty());
        let marked = "\
fn baseline(kv: &KvClient, keys: &[&[u8]]) {
    for key in keys {
        let _ = kv.get(key); // lint:allow-per-key-get — ablation baseline
    }
}
";
        assert!(lint_source("crates/pacon/src/ok.rs", marked).is_empty());
        // The modern marker spelling, on the line above.
        let marked2 = "\
fn baseline(kv: &KvClient, keys: &[&[u8]]) {
    for key in keys {
        // lint: allow(per-key-get) — ablation baseline
        let _ = kv.get(key);
    }
}
";
        assert!(lint_source("crates/pacon/src/ok.rs", marked2).is_empty());
        // `.for_each`, identifiers containing `for`, and `impl Trait
        // for Type` blocks are not loop headers.
        let not_a_loop = "fn f(c: &C) { let x = wait_for (c); c.cache.get(\"/p\"); }\n";
        assert!(lint_source("crates/pacon/src/ok.rs", not_a_loop).is_empty());
        let impl_block = "\
impl FileSystem for PaconClient {
    fn stat(&self, path: &str) -> FsResult<FileStat> {
        match self.cache.get(path) {
            Some((m, _)) => Ok(m.to_stat()),
            None => self.load(path),
        }
    }
}
";
        assert!(lint_source("crates/pacon/src/ok.rs", impl_block).is_empty());
    }

    #[test]
    fn r5_sees_single_line_and_while_loops() {
        let one_liner = "fn f(c: &C, ks: &[K]) { for k in ks { c.kv.get(k); } }\n";
        let f = lint_source("crates/pacon/src/bad.rs", one_liner);
        assert_eq!(rules_of(&f), vec![Rule::R5PerKeyGetLoop], "{f:?}");
        let wloop = "\
fn f(c: &C) {
    while busy() {
        c.kv().get(b\"k\");
    }
}
";
        let f = lint_source("crates/pacon/src/bad.rs", wloop);
        assert_eq!(rules_of(&f), vec![Rule::R5PerKeyGetLoop], "{f:?}");
    }

    #[test]
    fn r5_while_let_body_is_a_loop_but_match_is_not() {
        // v1's line-based loop mask misread `while let` headers; the
        // AST walker must see the body as a loop…
        let wl = "\
fn f(c: &C, it: &mut I) {
    while let Some(k) = it.next() {
        c.kv.get(k);
    }
}
";
        let f = lint_source("crates/pacon/src/bad.rs", wl);
        assert_eq!(rules_of(&f), vec![Rule::R5PerKeyGetLoop], "{f:?}");
        // …and a `match` arm after a loop keyword in a string is not.
        let not_loop = "\
fn g(c: &C) {
    let s = \"for x in y {\";
    c.cache.get(s);
}
";
        assert!(lint_source("crates/pacon/src/ok.rs", not_loop).is_empty());
    }

    #[test]
    fn raw_strings_and_braces_in_literals_do_not_confuse_the_walker() {
        // v1's strip_noncode mishandled raw strings; braces and quotes
        // inside them skewed the depth counters.
        let src = "\
fn f(c: &C) {
    let pat = r#\"weird { \" } parking_lot::Mutex .unwrap() \"#;
    let ch = '{';
    c.cache.get(pat);
}
";
        let f = lint_source("crates/pacon/src/ok.rs", src);
        assert!(f.is_empty(), "{f:?}");
        // And test-exemption still ends at the right brace afterwards.
        let src2 = "\
#[cfg(test)]
mod tests {
    fn t() { let s = r#\"}}}\"#; y.unwrap(); }
}

fn lib() { z.unwrap(); }
";
        let f2 = lint_source("crates/mq/src/queue.rs", src2);
        assert_eq!(f2.len(), 1, "{f2:?}");
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "\
fn lib() {}

#[cfg(test)]
mod tests {
    use parking_lot::Mutex;
    #[test]
    fn t() {
        x.lock().unwrap();
        y.unwrap();
    }
}
";
        let f = lint_source("crates/mq/src/queue.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_fns_inside_library_impls_are_exempt() {
        let src = "\
impl Thing {
    fn lib(&self) { self.a.lock(); }
    #[cfg(test)]
    fn helper(&self) { x.lock().unwrap(); use_of(parking_lot::Mutex::new(0)); }
}
";
        let f = lint_source("crates/mq/src/queue.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn code_after_cfg_test_block_is_linted_again() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}

fn lib() { z.unwrap(); }
";
        let f = lint_source("crates/mq/src/queue.rs", src);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn integration_tests_and_benches_are_exempt() {
        let src = "fn t() { a.lock().unwrap(); }\nuse parking_lot::Mutex;\n";
        assert!(lint_source("crates/mq/tests/stress.rs", src).is_empty());
        assert!(lint_source("tests/smoke.rs", src).is_empty());
        assert!(lint_source("crates/bench/benches/b.rs", src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "\
// parking_lot::Mutex is banned; .lock().unwrap() too
fn f() { println!(\"parking_lot::Mutex .unwrap()\"); }
";
        let f = lint_source("crates/mq/src/queue.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allowlist_parses_and_rejects_garbage() {
        let text = "# comment\n3 crates/mq/src/queue.rs\n\n1 src/lib.rs\n";
        let e = parse_allowlist(text).unwrap();
        assert_eq!(
            e,
            vec![
                ("crates/mq/src/queue.rs".to_string(), 3),
                ("src/lib.rs".to_string(), 1)
            ]
        );
        assert!(parse_allowlist("nonsense line").is_err());
        assert!(parse_allowlist("x path").is_err());
    }
}
