#![forbid(unsafe_code)]
//! Repo lint driver: `cargo run -p tools-lint` from anywhere in the
//! workspace. Exits non-zero on any finding. `--write-allowlist`
//! regenerates `tools/lint/unwrap_allowlist.txt` from the current tree
//! (use only when deleting unwraps, never to admit new ones).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tools_lint::{lint_source, parse_allowlist, Finding, Rule};

/// Directories scanned for `.rs` files, relative to the repo root.
/// `vendor/` (third-party stand-ins) and `tools/` (this lint — its rule
/// patterns appear literally in its own source) are deliberately absent.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "benches", "examples"];

fn main() -> ExitCode {
    let write_allowlist = std::env::args().any(|a| a == "--write-allowlist");
    let root = repo_root();
    let allowlist_path = root.join("tools/lint/unwrap_allowlist.txt");

    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    let mut unwrap_counts: BTreeMap<String, usize> = BTreeMap::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .expect("scanned file under root")
            .to_string_lossy()
            .replace('\\', "/");
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lint: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for f in lint_source(&rel, &source) {
            if f.rule == Rule::R4Unwrap {
                *unwrap_counts.entry(rel.clone()).or_insert(0) += 1;
            } else {
                findings.push(f);
            }
        }
    }

    if write_allowlist {
        let mut out = String::from(
            "# Per-file .unwrap() budgets for core-crate library code (lint rule R4).\n\
             # Format: `count path`. This list may shrink, never grow: remove\n\
             # entries as unwraps are eliminated. Regenerate with\n\
             # `cargo run -p tools-lint -- --write-allowlist` ONLY after deleting\n\
             # unwraps, never to admit new ones.\n",
        );
        for (file, count) in &unwrap_counts {
            out.push_str(&format!("{count} {file}\n"));
        }
        if let Err(e) = std::fs::write(&allowlist_path, out) {
            eprintln!("lint: cannot write allowlist: {e}");
            return ExitCode::FAILURE;
        }
        println!("lint: wrote {} entries to {}", unwrap_counts.len(), allowlist_path.display());
        return ExitCode::SUCCESS;
    }

    // R4: compare counts against the allowlist.
    let allow_text = std::fs::read_to_string(&allowlist_path).unwrap_or_default();
    let allow: BTreeMap<String, usize> = match parse_allowlist(&allow_text) {
        Ok(entries) => entries.into_iter().collect(),
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut r4_errors = Vec::new();
    for (file, &count) in &unwrap_counts {
        let budget = allow.get(file).copied().unwrap_or(0);
        if count > budget {
            r4_errors.push(format!(
                "{file}: {count} `.unwrap()` calls in library code (budget {budget}) — \
                 handle the error or use expect with an invariant message"
            ));
        } else if count < budget {
            r4_errors.push(format!(
                "{file}: allowlist budget {budget} but only {count} unwraps remain — \
                 shrink the entry (the allowlist may never overshoot)"
            ));
        }
    }
    for (file, &budget) in &allow {
        if !unwrap_counts.contains_key(file) && budget > 0 {
            r4_errors.push(format!(
                "{file}: allowlisted ({budget}) but has no unwraps — remove the entry"
            ));
        }
    }

    for f in &findings {
        eprintln!("lint: {f}");
    }
    for e in &r4_errors {
        eprintln!("lint: [R4 unwrap] {e}");
    }
    let total = findings.len() + r4_errors.len();
    if total > 0 {
        eprintln!("lint: {total} finding(s) across {} files", files.len());
        ExitCode::FAILURE
    } else {
        println!("lint: clean ({} files)", files.len());
        ExitCode::SUCCESS
    }
}

/// Repo root = two levels above this crate's manifest (tools/lint).
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("tools/lint lives two levels below the repo root")
        .to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if entry.file_name() != "target" {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
