#![forbid(unsafe_code)]
//! Analyzer driver: `cargo run -p tools-lint` from anywhere in the
//! workspace. Exits non-zero on any finding.
//!
//! Flags:
//! - `--json PATH` — write the full analysis (findings, unwrap counts,
//!   lock graph, stats) as JSON.
//! - `--dot PATH` — write the static lock graph in Graphviz DOT form
//!   (CI diffs this against the checked-in `docs/lock_graph.dot`).
//! - `--write-allowlist` — regenerate `tools/lint/unwrap_allowlist.txt`
//!   from the current tree (use only when deleting unwraps, never to
//!   admit new ones).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use tools_lint::{analyze, collect_workspace, dot, parse_allowlist, to_json};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_allowlist = args.iter().any(|a| a == "--write-allowlist");
    let flag_path = |name: &str| -> Option<PathBuf> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(PathBuf::from)
    };
    let json_path = flag_path("--json");
    let dot_path = flag_path("--dot");

    let root = repo_root();
    let allowlist_path = root.join("tools/lint/unwrap_allowlist.txt");
    let started = Instant::now();

    let files = match collect_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let analysis = match analyze(&files) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lint: parse failure: {e}");
            return ExitCode::FAILURE;
        }
    };

    if write_allowlist {
        let mut out = String::from(
            "# Per-file .unwrap() budgets for core-crate library code (lint rule R4).\n\
             # Format: `count path`. This list may shrink, never grow: remove\n\
             # entries as unwraps are eliminated. Regenerate with\n\
             # `cargo run -p tools-lint -- --write-allowlist` ONLY after deleting\n\
             # unwraps, never to admit new ones.\n",
        );
        for (file, count) in &analysis.unwrap_counts {
            out.push_str(&format!("{count} {file}\n"));
        }
        if let Err(e) = std::fs::write(&allowlist_path, out) {
            eprintln!("lint: cannot write allowlist: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "lint: wrote {} entries to {}",
            analysis.unwrap_counts.len(),
            allowlist_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(p) = &json_path {
        if let Err(e) = std::fs::write(p, to_json(&analysis)) {
            eprintln!("lint: cannot write {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(p) = &dot_path {
        if let Err(e) = std::fs::write(p, dot(&analysis.graph)) {
            eprintln!("lint: cannot write {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
    }

    // R4: compare counts against the allowlist (over, under, and stale
    // entries all fail — the budget must match the tree exactly).
    let allow_text = std::fs::read_to_string(&allowlist_path).unwrap_or_default();
    let allow: BTreeMap<String, usize> = match parse_allowlist(&allow_text) {
        Ok(entries) => entries.into_iter().collect(),
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut r4_errors = Vec::new();
    for (file, &count) in &analysis.unwrap_counts {
        let budget = allow.get(file).copied().unwrap_or(0);
        if count > budget {
            r4_errors.push(format!(
                "{file}: {count} `.unwrap()` calls in library code (budget {budget}) — \
                 handle the error or use expect with an invariant message"
            ));
        } else if count < budget {
            r4_errors.push(format!(
                "{file}: allowlist budget {budget} but only {count} unwraps remain — \
                 shrink the entry (the allowlist may never overshoot)"
            ));
        }
    }
    for (file, &budget) in &allow {
        if !analysis.unwrap_counts.contains_key(file) && budget > 0 {
            r4_errors.push(format!(
                "{file}: allowlisted ({budget}) but has no unwraps — remove the entry"
            ));
        }
    }

    for f in &analysis.findings {
        eprintln!("lint: {f}");
    }
    for e in &r4_errors {
        eprintln!("lint: [R4 unwrap] {e}");
    }
    let elapsed = started.elapsed();
    let s = &analysis.stats;
    let total = analysis.findings.len() + r4_errors.len();
    if total > 0 {
        eprintln!(
            "lint: {total} finding(s) — {} files, {} fns, {} lock classes, {} edges ({:.2?})",
            s.files,
            s.fns,
            analysis.graph.nodes.len(),
            analysis.graph.edges.len(),
            elapsed
        );
        ExitCode::FAILURE
    } else {
        println!(
            "lint: clean — {} files, {} fns, {} lock classes, {} edges, {} acq sites \
             ({} unresolved) in {:.2?}",
            s.files,
            s.fns,
            analysis.graph.nodes.len(),
            analysis.graph.edges.len(),
            s.acq_sites,
            s.unresolved_acqs,
            elapsed
        );
        ExitCode::SUCCESS
    }
}

/// Repo root = two levels above this crate's manifest (tools/lint).
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("tools/lint lives two levels below the repo root")
        .to_path_buf()
}
