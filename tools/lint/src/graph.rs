//! Static lock-graph construction: replay each function's event stream
//! with a live-guard stack, record every may-hold-while-acquiring edge
//! (direct or through resolved calls), check the edges against the
//! declared level hierarchy, and flag blocking calls made while a guard
//! is live (rule R6).

use std::collections::BTreeMap;

use crate::model::{
    Event, Finding, GraphEdge, LockGraph, Rule, Site,
};
use crate::resolve::{is_blocking_primitive, Workspace};

struct Live {
    class: String,
    site: Site,
    var: Option<String>,
    /// Scope depth the guard dies at (for `let`-bound guards) — or the
    /// depth whose next statement boundary kills it (temporaries).
    depth: usize,
    stmt_lived: bool,
}

pub struct GraphOut {
    pub graph: LockGraph,
    pub findings: Vec<Finding>,
}

/// `allows(file, line, slug)` consults the per-file marker maps.
pub fn build(ws: &Workspace, allows: &dyn Fn(&str, usize, &str) -> bool) -> GraphOut {
    let mut edges: BTreeMap<(String, String), GraphEdge> = BTreeMap::new();
    let mut findings = Vec::new();

    for (i, f) in ws.fns.iter().enumerate() {
        let mut live: Vec<Live> = Vec::new();
        let mut depth = 0usize;
        let mut r6_lines: Vec<usize> = Vec::new();
        for ev in &f.events {
            match ev {
                Event::Open | Event::LoopOpen => depth += 1,
                Event::Close | Event::LoopClose => {
                    live.retain(|l| l.depth < depth);
                    depth = depth.saturating_sub(1);
                }
                Event::Stmt => live.retain(|l| !(l.stmt_lived && l.depth == depth)),
                Event::Drop(v) => live.retain(|l| l.var.as_deref() != Some(v.as_str())),
                Event::Acq(a) => {
                    let acq = &f.acqs[*a];
                    let Some(d) = ws.resolve_acq(f, &acq.recv_key, acq.mode) else {
                        continue;
                    };
                    let class = ws.decls[d].class.clone();
                    let site = Site { file: f.file.clone(), line: acq.line };
                    for l in &live {
                        add_edge(&mut edges, &l.class, &class, &l.site, &site, Vec::new());
                    }
                    live.push(Live {
                        class,
                        site,
                        var: acq.guard_var.clone(),
                        depth,
                        stmt_lived: acq.guard_var.is_none(),
                    });
                }
                Event::Call(c) => {
                    let call = &f.calls[*c];
                    let res = &ws.resolved[i][*c];
                    // Interprocedural edges: everything the callee may
                    // acquire is acquired while our guards are live.
                    for &callee in &res.callees {
                        for (class, (site, chain)) in &ws.trans_acq[callee] {
                            let mut via = vec![format!("{}:{}", call.name, call.line)];
                            via.extend(chain.iter().cloned());
                            for l in &live {
                                add_edge(&mut edges, &l.class, class, &l.site, site, via.clone());
                            }
                        }
                    }
                    // R6: blocking while holding a guard.
                    if !live.is_empty() && !call.in_permit && !r6_lines.contains(&call.line) {
                        let blocking: Option<(Site, Vec<String>, String)> = if res.external {
                            is_blocking_primitive(call).then(|| {
                                (
                                    Site { file: f.file.clone(), line: call.line },
                                    Vec::new(),
                                    call.name.clone(),
                                )
                            })
                        } else {
                            res.callees
                                .iter()
                                .find_map(|&callee| ws.trans_blocking[callee].clone())
                                .map(|(site, chain, label)| {
                                    let mut via = vec![format!("{}:{}", call.name, call.line)];
                                    via.extend(chain);
                                    (site, via, label)
                                })
                        };
                        if let Some((bsite, via, label)) = blocking {
                            if !allows(&f.file, call.line, Rule::R6HoldAcrossBlocking.slug()) {
                                let holder = &live[live.len() - 1];
                                let via_s = if via.is_empty() {
                                    String::new()
                                } else {
                                    format!(" via {}", via.join(" -> "))
                                };
                                findings.push(Finding {
                                    rule: Rule::R6HoldAcrossBlocking,
                                    file: f.file.clone(),
                                    line: call.line,
                                    message: format!(
                                        "blocking call `{label}`{via_s} while holding \
                                         `{}` — wrap in syncguard::permit_blocking with a \
                                         deadlock-freedom argument, or release the guard",
                                        holder.class
                                    ),
                                    related: vec![holder.site.clone(), bsite],
                                });
                                r6_lines.push(call.line);
                            }
                        }
                    }
                    // Guard-carrying constructors (`start_barrier`)
                    // leave their guard live in this scope.
                    for &callee in &res.callees {
                        for class in &ws.carried[callee] {
                            if live.iter().any(|l| l.class == *class) {
                                continue;
                            }
                            let site = Site { file: f.file.clone(), line: call.line };
                            for l in &live {
                                add_edge(&mut edges, &l.class, class, &l.site, &site, Vec::new());
                            }
                            live.push(Live {
                                class: class.clone(),
                                site,
                                var: None,
                                depth,
                                stmt_lived: false,
                            });
                        }
                    }
                }
            }
        }
    }

    // Level check over the deduplicated edge set.
    let level_of = |class: &str| ws.class_decl.get(class).map(|&i| ws.decls[i].level);
    for e in edges.values() {
        let (Some(from_lv), Some(to_lv)) = (level_of(&e.from), level_of(&e.to)) else {
            continue;
        };
        if allows(&e.to_site.file, e.to_site.line, Rule::LockOrder.slug()) {
            continue;
        }
        let via_s = if e.via.is_empty() {
            String::new()
        } else {
            format!(" via {}", e.via.join(" -> "))
        };
        let problem = if e.from == e.to {
            Some(format!(
                "`{}` (level {}) may be re-acquired while already held{via_s}",
                e.from, from_lv
            ))
        } else if to_lv < from_lv {
            Some(format!(
                "lock-order inversion: acquiring `{}` (level {to_lv}) while holding \
                 `{}` (level {from_lv}){via_s} — levels must not decrease",
                e.to, e.from
            ))
        } else if to_lv == from_lv {
            Some(format!(
                "same-level acquisition: `{}` and `{}` are both level {from_lv} and \
                 may nest{via_s} — equal levels must never be held together",
                e.to, e.from
            ))
        } else {
            None
        };
        if let Some(message) = problem {
            findings.push(Finding {
                rule: Rule::LockOrder,
                file: e.to_site.file.clone(),
                line: e.to_site.line,
                message,
                related: vec![e.from_site.clone()],
            });
        }
    }

    // Nodes: every declared class, one entry each, sorted by (level,
    // class) like the runtime report.
    let mut nodes: Vec<(String, u16, Site)> = Vec::new();
    for (class, &i) in &ws.class_decl {
        let d = &ws.decls[i];
        nodes.push((class.clone(), d.level, d.site.clone()));
    }
    nodes.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));

    GraphOut {
        graph: LockGraph { nodes, edges: edges.into_values().collect() },
        findings,
    }
}

fn add_edge(
    edges: &mut BTreeMap<(String, String), GraphEdge>,
    from: &str,
    to: &str,
    from_site: &Site,
    to_site: &Site,
    via: Vec<String>,
) {
    edges.entry((from.to_string(), to.to_string())).or_insert_with(|| GraphEdge {
        from: from.to_string(),
        to: to.to_string(),
        from_site: from_site.clone(),
        to_site: to_site.clone(),
        via,
    });
}

/// The static lock graph in Graphviz DOT form — same shape as the
/// runtime `syncguard::dot()` dump (nodes labelled with levels), with
/// edge labels carrying the witness call chain instead of dynamic
/// acquisition counts.
pub fn dot(graph: &LockGraph) -> String {
    let mut out = String::from(
        "digraph lock_order_static {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    for (class, level, _) in &graph.nodes {
        out.push_str(&format!("  \"{class}\" [label=\"{class}\\nlevel {level}\"];\n"));
    }
    for e in &graph.edges {
        let label = if e.via.is_empty() {
            format!("{}:{}", tail(&e.to_site.file), e.to_site.line)
        } else {
            e.via.join("\\n")
        };
        out.push_str(&format!("  \"{}\" -> \"{}\" [label=\"{label}\"];\n", e.from, e.to));
    }
    out.push_str("}\n");
    out
}

fn tail(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}
