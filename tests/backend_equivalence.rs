//! Cross-backend equivalence: the same operation sequence driven through
//! native DFS, IndexFS and Pacon must leave the same visible namespace.
//! For Pacon, "visible" means both the application's view (strongly
//! consistent immediately) and the DFS backup copy (after quiescing).

use std::sync::Arc;

use fsapi::{Credentials, FileSystem, FsError};
use pacon::{PaconConfig, PaconRegion};
use simnet::{ClientId, LatencyProfile, NodeId, Topology};
use workloads::ops::FsOp;

fn workload() -> Vec<FsOp> {
    let mut ops = Vec::new();
    ops.push(FsOp::Mkdir("/w/a".into(), 0o755));
    ops.push(FsOp::Mkdir("/w/a/b".into(), 0o755));
    ops.push(FsOp::Mkdir("/w/c".into(), 0o755));
    for i in 0..10 {
        ops.push(FsOp::Create(format!("/w/a/f{i}"), 0o644));
        ops.push(FsOp::Create(format!("/w/a/b/g{i}"), 0o644));
    }
    for i in (0..10).step_by(2) {
        ops.push(FsOp::Unlink(format!("/w/a/f{i}")));
    }
    ops.push(FsOp::Create("/w/a/f0".into(), 0o600)); // re-create
    ops.push(FsOp::Write { path: "/w/c/notes".into(), offset: 0, data: b"x".to_vec() }); // fails: no create
    ops.push(FsOp::Create("/w/c/notes".into(), 0o644));
    ops.push(FsOp::Write { path: "/w/c/notes".into(), offset: 0, data: b"hello".to_vec() });
    ops
}

/// The observable state we compare: sorted (path, kind, size) for the
/// whole universe of paths the workload touches.
fn observe(fs: &dyn FileSystem, cred: &Credentials) -> Vec<(String, String, u64)> {
    let mut out = Vec::new();
    let mut paths = vec!["/w/a".to_string(), "/w/a/b".to_string(), "/w/c".to_string()];
    for i in 0..10 {
        paths.push(format!("/w/a/f{i}"));
        paths.push(format!("/w/a/b/g{i}"));
    }
    paths.push("/w/c/notes".to_string());
    for p in paths {
        match fs.stat(&p, cred) {
            Ok(st) => out.push((p, format!("{:?}", st.kind), st.size)),
            Err(FsError::NotFound) => {}
            Err(e) => panic!("unexpected error on {p}: {e}"),
        }
    }
    out.sort();
    out
}

#[test]
fn all_backends_converge_to_the_same_namespace() {
    let profile = Arc::new(LatencyProfile::zero());
    let cred = Credentials::new(1, 1);
    let ops = workload();

    // Native DFS (reference).
    let ref_dfs = dfs::DfsCluster::with_default_config(Arc::clone(&profile));
    let fs = ref_dfs.client();
    fs.mkdir("/w", &cred, 0o777).unwrap();
    let (_, _) = workloads::ops::exec_all(&fs, &cred, &ops);
    let want = observe(&fs, &cred);
    assert!(!want.is_empty());

    // IndexFS.
    let idx = indexfs::IndexFsCluster::with_default_config(
        Topology::new(4, 2),
        Arc::clone(&profile),
    )
    .unwrap();
    let fs = idx.client(NodeId(0));
    fs.mkdir("/w", &cred, 0o777).unwrap();
    let (_, _) = workloads::ops::exec_all(&fs, &cred, &ops);
    assert_eq!(observe(&fs, &cred), want, "IndexFS view diverged");

    // Pacon: application view immediately, DFS view after quiesce.
    let dfs = dfs::DfsCluster::with_default_config(Arc::clone(&profile));
    let region = PaconRegion::launch(
        PaconConfig::new("/w", Topology::new(2, 2), cred),
        &dfs,
    )
    .unwrap();
    let client = region.client(ClientId(0));
    let (_, _) = workloads::ops::exec_all(&client, &cred, &ops);
    assert_eq!(observe(&client, &cred), want, "Pacon application view diverged");
    region.quiesce();
    let raw = dfs.client();
    assert_eq!(observe(&raw, &cred), want, "Pacon backup copy diverged");
    region.shutdown().unwrap();
}

#[test]
fn pacon_view_matches_reference_during_mixed_multi_client_run() {
    let profile = Arc::new(LatencyProfile::zero());
    let cred = Credentials::new(1, 1);

    let ref_dfs = dfs::DfsCluster::with_default_config(Arc::clone(&profile));
    let rfs = ref_dfs.client();
    rfs.mkdir("/w", &cred, 0o777).unwrap();

    let dfs = dfs::DfsCluster::with_default_config(Arc::clone(&profile));
    let region = PaconRegion::launch(
        PaconConfig::new("/w", Topology::new(3, 1), cred),
        &dfs,
    )
    .unwrap();
    let clients: Vec<_> = (0..3).map(|i| region.client(ClientId(i))).collect();

    // Interleave ops across three clients; mirror on the reference.
    for round in 0..20 {
        let c = &clients[round % 3];
        let dir = format!("/w/d{}", round % 4);
        let file = format!("{dir}/r{round}");
        let _ = c.mkdir(&dir, &cred, 0o755);
        let _ = rfs.mkdir(&dir, &cred, 0o755);
        c.create(&file, &cred, 0o644).unwrap();
        rfs.create(&file, &cred, 0o644).unwrap();
        if round % 5 == 4 {
            c.unlink(&file, &cred).unwrap();
            rfs.unlink(&file, &cred).unwrap();
        }
    }

    // Every client's strongly consistent view agrees with the reference.
    for round in 0..20 {
        let file = format!("/w/d{}/r{round}", round % 4);
        let want = rfs.stat(&file, &cred).is_ok();
        for c in &clients {
            assert_eq!(c.stat(&file, &cred).is_ok(), want, "divergence at {file}");
        }
    }
    region.shutdown().unwrap();
}
