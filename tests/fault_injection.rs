//! Failure injection: transient MDS outages must not lose committed-
//! queue operations — the independent-commit resubmission absorbs them
//! (Section III.E-1's "resubmit the operation until it succeeds").

use std::sync::Arc;

use fsapi::{Credentials, FileSystem, FsError};
use pacon::{PaconConfig, PaconRegion};
use simnet::{ClientId, LatencyProfile, Topology};

#[test]
fn transient_mds_outage_is_absorbed_by_resubmission() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(1, 2), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));

    // Arm 25 transient failures, then push 40 creates through.
    dfs.inject_mds_failures(0, 25);
    for i in 0..40 {
        c.create(&format!("/job/f{i:02}"), &cred, 0o644).unwrap();
    }
    region.quiesce();
    assert_eq!(dfs.mds_counter("injected_failures"), 25, "all faults fired");
    // Every create survived the outage.
    assert_eq!(dfs.client().readdir("/job", &cred).unwrap().len(), 40);
    let report = region.report();
    assert_eq!(report.committed, 40);
    assert!(report.resubmitted >= 25, "each fault forces at least one resubmission");
    region.shutdown().unwrap();
}

#[test]
fn client_side_sync_paths_surface_transient_errors() {
    // Synchronous paths (redirection, getattr misses) see the raw error —
    // Pacon does not mask DFS failures outside the commit pipeline.
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    dfs.client().create("/outside", &cred, 0o644).unwrap();
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(1, 1), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));
    dfs.inject_mds_failures(0, 1);
    assert!(matches!(c.stat("/outside", &cred), Err(FsError::Backend(_))));
    // Next attempt succeeds (fault consumed).
    assert!(c.stat("/outside", &cred).unwrap().is_file());
    region.shutdown().unwrap();
}

#[test]
fn persistent_outage_exhausts_the_retry_budget() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let mut config = PaconConfig::new("/job", Topology::new(1, 1), cred);
    config.max_commit_retries = 10;
    let region = PaconRegion::launch(config, &dfs).unwrap();
    let c = region.client(ClientId(0));
    // Far more failures than the budget allows.
    dfs.inject_mds_failures(0, 1_000);
    c.create("/job/doomed", &cred, 0o644).unwrap();
    region.quiesce();
    let report = region.report();
    assert_eq!(report.committed, 0);
    assert_eq!(report.discarded, 1, "retry budget must bound the outage");
    // Primary copy still serves the application.
    assert!(c.stat("/job/doomed", &cred).unwrap().is_file());
    region.shutdown().unwrap();
}
