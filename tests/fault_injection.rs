//! Failure injection: transient MDS outages must not lose committed-
//! queue operations — the independent-commit resubmission absorbs them
//! (Section III.E-1's "resubmit the operation until it succeeds").
//!
//! Group commit adds two hazards covered here: an outage striking *inside*
//! a batched message must disaggregate the failed ops into single-op
//! retries without losing or duplicating anything, and a lost reply must
//! not make the replayed creation burn its retry budget against its own
//! already-applied DFS entry.

//! Crash-kill layer: a deterministic [`CrashSwitch`] kills the node at
//! one of four pipeline stages — before the WAL append, after the append
//! but before the queue send, after the DFS applied a message but before
//! it settled, and after everything applied but before the log truncated.
//! Property tests relaunch the region from its logs and assert the
//! recovered DFS converges to an uncrashed oracle (the vendored proptest
//! runner prints the failing seed and inputs on any failure or panic, so
//! every counterexample is replayable).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use fsapi::{Credentials, FileSystem, FsError};
use pacon::commit::wal::{CrashPoint, CrashSwitch};
use pacon::commit::worker::WorkerStep;
use pacon::{PaconConfig, PaconRegion};
use proptest::prelude::*;
use simnet::{ClientId, LatencyProfile, Topology};

#[test]
fn transient_mds_outage_is_absorbed_by_resubmission() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(1, 2), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));

    // Arm 25 transient failures, then push 40 creates through.
    dfs.inject_mds_failures(0, 25);
    for i in 0..40 {
        c.create(&format!("/job/f{i:02}"), &cred, 0o644).unwrap();
    }
    region.quiesce();
    assert_eq!(dfs.mds_counter("injected_failures"), 25, "all faults fired");
    // Every create survived the outage.
    assert_eq!(dfs.client().readdir("/job", &cred).unwrap().len(), 40);
    let report = region.report();
    assert_eq!(report.committed, 40);
    assert!(report.resubmitted >= 25, "each fault forces at least one resubmission");
    region.shutdown().unwrap();
}

#[test]
fn client_side_sync_paths_surface_transient_errors() {
    // Synchronous paths (redirection, getattr misses) see the raw error —
    // Pacon does not mask DFS failures outside the commit pipeline.
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    dfs.client().create("/outside", &cred, 0o644).unwrap();
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(1, 1), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));
    dfs.inject_mds_failures(0, 1);
    assert!(matches!(c.stat("/outside", &cred), Err(FsError::Backend(_))));
    // Next attempt succeeds (fault consumed).
    assert!(c.stat("/outside", &cred).unwrap().is_file());
    region.shutdown().unwrap();
}

#[test]
fn persistent_outage_exhausts_the_retry_budget() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let mut config = PaconConfig::new("/job", Topology::new(1, 1), cred);
    config.max_commit_retries = 10;
    let region = PaconRegion::launch(config, &dfs).unwrap();
    let c = region.client(ClientId(0));
    // Far more failures than the budget allows.
    dfs.inject_mds_failures(0, 1_000);
    c.create("/job/doomed", &cred, 0o644).unwrap();
    region.quiesce();
    let report = region.report();
    assert_eq!(report.committed, 0);
    assert_eq!(report.discarded, 1, "retry budget must bound the outage");
    // Primary copy still serves the application.
    assert!(c.stat("/job/doomed", &cred).unwrap().is_file());
    region.shutdown().unwrap();
}

/// MDS outage striking mid-batch: the failed ops disaggregate into the
/// single-op retry backlog, the rest of the batch commits, and nothing is
/// lost or duplicated. Every counter reconciles with the op count.
#[test]
fn mid_batch_outage_disaggregates_into_single_op_retries() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch_paused(
        PaconConfig::new("/job", Topology::new(1, 1), cred).with_commit_batch(8),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));

    // Exactly one full batch: the 8th create flushes the buffer.
    for i in 0..8 {
        c.create(&format!("/job/f{i}"), &cred, 0o644).unwrap();
    }
    // The outage starts before the commit process dequeues the batch and
    // fails its first 3 ops (per-request fault consumption).
    dfs.inject_mds_failures(0, 3);

    let mut w = region.take_worker(0);
    assert_eq!(
        w.step(),
        WorkerStep::Batch { committed: 5, retried: 3, discarded: 0 },
        "partial batch failure must settle per-op"
    );
    assert!(!w.backlog_empty(), "failed ops sit in the single-op retry backlog");

    // Drain: the disaggregated retries go through the plain single-op path.
    let mut spins = 0;
    while !region.core().drained() {
        w.step();
        spins += 1;
        assert!(spins < 10_000, "retries never converged");
    }

    // No lost ops, no duplicates.
    let mut names = dfs.client().readdir("/job", &cred).unwrap();
    names.sort();
    assert_eq!(names, (0..8).map(|i| format!("f{i}")).collect::<Vec<_>>());

    // Counters reconcile with the op count.
    let report = region.report();
    let counters = &region.core().counters;
    assert_eq!(report.committed, 8);
    assert_eq!(report.resubmitted, 3);
    assert_eq!(report.discarded, 0);
    assert_eq!(counters.get("commit_errors"), 0);
    assert_eq!(report.batches_flushed, 1);
    assert_eq!(report.batched_ops, 8);
    assert_eq!(report.ops_enqueued, 8);
    assert_eq!(report.ops_completed, 8);
    assert_eq!(
        report.committed + report.discarded + counters.get("commit_errors")
            + report.coalesced_cancel + report.coalesced_collapse,
        report.ops_enqueued,
        "every enqueued op must be accounted for exactly once"
    );
    // One batched RPC for the flush; the MDS saw all 8 ops inside it.
    assert_eq!(dfs.mds_counter("batch"), 1);
    assert_eq!(dfs.mds_counter("batch_ops"), 8);
    assert_eq!(dfs.mds_counter("injected_failures"), 3);
}

/// Regression: a creation whose first attempt hit a transient backend
/// fault *after* the MDS applied it (reply lost) must treat the replay's
/// `AlreadyExists` as idempotent success — not burn retry budget against
/// its own entry and miscount it as dropped.
#[test]
fn replayed_create_after_lost_reply_is_idempotent_success() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let mut config = PaconConfig::new("/job", Topology::new(1, 1), cred);
    // A tight budget makes the pre-fix failure mode (retrying
    // AlreadyExists until the budget drops the op) unmissable.
    config.max_commit_retries = 4;
    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    let c = region.client(ClientId(0));

    c.create("/job/once", &cred, 0o644).unwrap();
    // The create applies on the MDS but its reply is lost.
    dfs.inject_mds_reply_loss(0, 1);

    let mut w = region.take_worker(0);
    assert_eq!(w.step(), WorkerStep::Retried, "lost reply surfaces as a backend fault");
    assert!(dfs.client().stat("/job/once", &cred).unwrap().is_file(), "op applied server-side");
    assert_eq!(
        w.step(),
        WorkerStep::Committed,
        "replay must recognize its own entry instead of retrying"
    );

    let report = region.report();
    assert_eq!(report.committed, 1);
    assert_eq!(report.idempotent_replays, 1);
    assert_eq!(report.resubmitted, 1);
    assert_eq!(report.discarded, 0, "no budget burned on the replay");
    assert!(region.core().drained());
    assert!(c.stat("/job/once", &cred).unwrap().is_file());
}

/// The same lost-reply hazard inside a batch: the faulted op disaggregates
/// carrying its backend-fault history, so its single-op replay is still
/// recognized as idempotent.
#[test]
fn lost_reply_mid_batch_replays_idempotently() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let mut config =
        PaconConfig::new("/job", Topology::new(1, 1), cred).with_commit_batch(4);
    config.max_commit_retries = 4;
    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    let c = region.client(ClientId(0));

    for i in 0..4 {
        c.create(&format!("/job/g{i}"), &cred, 0o644).unwrap();
    }
    // First op of the batch applies but its reply is lost.
    dfs.inject_mds_reply_loss(0, 1);

    let mut w = region.take_worker(0);
    assert_eq!(w.step(), WorkerStep::Batch { committed: 3, retried: 1, discarded: 0 });
    assert_eq!(w.step(), WorkerStep::Committed, "disaggregated replay is idempotent");

    let report = region.report();
    assert_eq!(report.committed, 4);
    assert_eq!(report.idempotent_replays, 1);
    assert_eq!(report.discarded, 0);
    assert!(region.core().drained());
    let mut names = dfs.client().readdir("/job", &cred).unwrap();
    names.sort();
    assert_eq!(names, (0..4).map(|i| format!("g{i}")).collect::<Vec<_>>());
}

// ---------------------------------------------------------------------------
// Crash-kill recovery harness (durable commit queue)
// ---------------------------------------------------------------------------

/// A unique, empty WAL directory per scenario.
fn fresh_wal_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pacon-crashkill-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Generated workload step over the 4-dir × 3-file universe of
/// `commit_equivalence`, plus deterministic-payload writes.
#[derive(Debug, Clone)]
enum KStep {
    Mkdir(usize),
    Create(usize),
    Unlink(usize),
    Write(usize, u8),
}

fn dir_path(d: usize) -> String {
    format!("/w/d{}", d % 4)
}
fn file_path(i: usize) -> String {
    format!("/w/d{}/f{}", (i / 3) % 4, i % 3)
}
fn payload(b: u8) -> Vec<u8> {
    vec![b; (b as usize % 24) + 1]
}

fn kstep_strategy() -> impl Strategy<Value = KStep> {
    prop_oneof![
        2 => (0usize..4).prop_map(KStep::Mkdir),
        4 => (0usize..12).prop_map(KStep::Create),
        2 => (0usize..12).prop_map(KStep::Unlink),
        3 => ((0usize..12), any::<u8>()).prop_map(|(i, b)| KStep::Write(i, b)),
    ]
}

/// Issue one step through a Pacon client; `Ok(())` means the client
/// acknowledged the mutation.
fn issue(c: &pacon::PaconClient, cred: &Credentials, s: &KStep) -> Result<(), FsError> {
    match s {
        KStep::Mkdir(d) => c.mkdir(&dir_path(*d), cred, 0o755),
        KStep::Create(i) => c.create(&file_path(*i), cred, 0o644),
        KStep::Unlink(i) => c.unlink(&file_path(*i), cred),
        KStep::Write(i, b) => c.write(&file_path(*i), cred, 0, &payload(*b)).map(|_| ()),
    }
}

/// Apply one step directly to the oracle DFS, ignoring rejections (the
/// oracle only sees steps the crashed region acknowledged, but stays
/// defensive about ordering edge cases).
fn oracle_apply(fs: &dfs::DfsClient, cred: &Credentials, s: &KStep) {
    let _ = match s {
        KStep::Mkdir(d) => fs.mkdir(&dir_path(*d), cred, 0o755),
        KStep::Create(i) => fs.create(&file_path(*i), cred, 0o644),
        KStep::Unlink(i) => fs.unlink(&file_path(*i), cred),
        KStep::Write(i, b) => fs.write(&file_path(*i), cred, 0, &payload(*b)).map(|_| ()),
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// The tentpole property: for every workload, every kill stage, and
    /// every arming depth, the region recovered from its WALs converges
    /// to exactly the state an uncrashed oracle reaches by applying the
    /// acknowledged ops in program order — including a crash *during*
    /// recovery (the log replays twice).
    #[test]
    fn crash_kill_recovery_converges_to_oracle(
        steps in proptest::collection::vec(kstep_strategy(), 4..24),
        nth in 1u32..4,
        use_batching in any::<bool>(),
    ) {
        let points = [
            CrashPoint::PreAppend,
            CrashPoint::PostAppend,
            CrashPoint::MidBatch,
            CrashPoint::PreTruncate,
        ];
        for point in points {
            let profile = Arc::new(LatencyProfile::zero());
            let cred = Credentials::new(1, 1);
            let dfs = dfs::DfsCluster::with_default_config(Arc::clone(&profile));
            let wal_dir = fresh_wal_dir("prop");
            let mut config = PaconConfig::new("/w", Topology::new(1, 1), cred)
                .with_durability(&wal_dir);
            if use_batching {
                config = config.with_commit_batch(4);
            }

            let region = PaconRegion::launch_paused(config.clone(), &dfs).unwrap();
            region.core().crash.arm(point, nth);
            let c = region.client(ClientId(0));

            // Issue until the crash switch kills the publish path. An op
            // that dies pre-append was never durable (the client saw the
            // error); one that dies post-append is durable despite the
            // error and the oracle must include it.
            let mut acked: Vec<KStep> = Vec::new();
            for s in &steps {
                match issue(&c, &cred, s) {
                    Ok(()) => acked.push(s.clone()),
                    Err(e) if CrashSwitch::is_crash_error(&e) => {
                        if point == CrashPoint::PostAppend {
                            acked.push(s.clone());
                        }
                        break;
                    }
                    // Admission rejection (missing parent, duplicate,
                    // …): never enqueued, never durable.
                    Err(_) => {}
                }
            }

            // Drive the commit worker until it drains or the node dies.
            let mut w = region.take_worker(0);
            let mut spins = 0;
            while !region.core().drained() {
                if w.step() == WorkerStep::Crashed {
                    break;
                }
                spins += 1;
                prop_assert!(spins < 50_000, "worker did not converge at {:?}", point);
            }
            drop(w);
            region.abort();
            drop(c);
            drop(region);

            // Uncrashed oracle: acknowledged ops in program order.
            let oracle = dfs::DfsCluster::with_default_config(Arc::clone(&profile));
            let ofs = oracle.client();
            ofs.mkdir("/w", &cred, 0o777).unwrap();
            for s in &acked {
                oracle_apply(&ofs, &cred, s);
            }

            // Recovery — killed again mid-replay whenever the log is
            // non-trivial, so the double-replay (crash during recovery)
            // path is exercised on the same schedules.
            let mut interrupted = config.clone();
            interrupted.recovery_crash_after = Some(1);
            let recovered = match PaconRegion::launch_paused(interrupted, &dfs) {
                Ok(r) => r, // log was empty or all-stuck: nothing applied
                Err(e) => {
                    prop_assert!(
                        CrashSwitch::is_crash_error(&e),
                        "unexpected recovery error at {:?}: {}", point, e
                    );
                    PaconRegion::launch_paused(config.clone(), &dfs).unwrap()
                }
            };
            let rep = recovered.report();
            prop_assert_eq!(
                rep.wal_replayed,
                rep.recovery_applied + rep.recovery_skipped,
                "every replayed op must be applied or accounted as skipped"
            );
            drop(recovered);

            // Namespace equivalence: paths, kinds, and sizes.
            let got = dfs.snapshot();
            let want = oracle.snapshot();
            prop_assert_eq!(&got, &want, "namespace diverged at {:?}", point);

            // Content equivalence for every file slot in the universe.
            for i in 0..12 {
                let p = file_path(i);
                let want = ofs.read(&p, &cred, 0, 1 << 12);
                let got = dfs.client().read(&p, &cred, 0, 1 << 12);
                match (want, got) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "content diverged at {} ({:?})", p, point),
                    (Err(FsError::NotFound), Err(FsError::NotFound)) => {}
                    other => prop_assert!(false, "content diverged at {} ({:?}): {:?}", p, point, other),
                }
            }
            let _ = std::fs::remove_dir_all(&wal_dir);
        }
    }
}

/// Deterministic post-apply/pre-truncate kill: every op committed, the
/// log never truncated, so the *whole* log replays as seen-cache no-ops —
/// no duplicates, and the counters reconcile exactly.
#[test]
fn pre_truncate_crash_replays_the_full_log_as_noops() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let wal_dir = fresh_wal_dir("pretruncate");
    let config =
        PaconConfig::new("/job", Topology::new(1, 1), cred).with_durability(&wal_dir);

    let region = PaconRegion::launch_paused(config.clone(), &dfs).unwrap();
    region.core().crash.arm(CrashPoint::PreTruncate, 1);
    let c = region.client(ClientId(0));
    for i in 0..6 {
        c.create(&format!("/job/f{i}"), &cred, 0o644).unwrap();
    }
    let mut w = region.take_worker(0);
    let mut spins = 0;
    while !region.core().drained() {
        assert_ne!(w.step(), WorkerStep::Crashed, "kill point is after the last settle");
        spins += 1;
        assert!(spins < 10_000, "commit never converged");
    }
    let old = region.report();
    assert_eq!(old.committed, 6);
    assert_eq!(old.wal_appended, 6);
    assert_eq!(old.wal_fsyncs, 6, "fsync batch 1 syncs per append");
    assert_eq!(old.wal_truncations, 0, "the kill point must block truncation");
    drop(w);
    region.abort();
    drop(c);
    drop(region);

    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    let rep = region.report();
    assert_eq!(rep.wal_replayed, 6);
    assert_eq!(rep.recovery_applied, 6);
    assert_eq!(rep.recovery_skipped, 0);
    assert_eq!(
        dfs.mds_counter("replay_noop"),
        6,
        "every replayed op must be recognized as already applied"
    );
    let mut names = dfs.client().readdir("/job", &cred).unwrap();
    names.sort();
    assert_eq!(names, (0..6).map(|i| format!("f{i}")).collect::<Vec<_>>());
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Deterministic mid-batch kill: the DFS applied a whole batched RPC but
/// the node died before settling it. Recovery replays the full log; the
/// applied prefix no-ops, the unapplied suffix commits, nothing is lost
/// or duplicated.
#[test]
fn mid_batch_crash_keeps_every_acked_op() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let wal_dir = fresh_wal_dir("midbatch");
    let config = PaconConfig::new("/job", Topology::new(1, 1), cred)
        .with_commit_batch(4)
        .with_durability(&wal_dir);

    let region = PaconRegion::launch_paused(config.clone(), &dfs).unwrap();
    region.core().crash.arm(CrashPoint::MidBatch, 1);
    let c = region.client(ClientId(0));
    // Two full batches of 4; the first one's RPC lands, then the node dies.
    for i in 0..8 {
        c.create(&format!("/job/f{i}"), &cred, 0o644).unwrap();
    }
    let mut w = region.take_worker(0);
    assert_eq!(w.step(), WorkerStep::Crashed, "kill before the first settle");
    assert_eq!(w.step(), WorkerStep::Crashed, "a dead node stays dead");
    assert_eq!(
        dfs.client().readdir("/job", &cred).unwrap().len(),
        4,
        "the first batch applied server-side"
    );
    let old = region.report();
    assert_eq!(old.committed, 0, "nothing settled");
    assert_eq!(old.wal_appended, 8);
    drop(w);
    region.abort();
    drop(c);
    drop(region);

    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    let rep = region.report();
    assert_eq!(rep.wal_replayed, 8);
    assert_eq!(rep.recovery_applied, 8);
    assert_eq!(rep.recovery_skipped, 0);
    assert_eq!(dfs.mds_counter("replay_noop"), 4, "the applied batch must no-op");
    let mut names = dfs.client().readdir("/job", &cred).unwrap();
    names.sort();
    assert_eq!(names, (0..8).map(|i| format!("f{i}")).collect::<Vec<_>>());
    let _ = std::fs::remove_dir_all(&wal_dir);
}
