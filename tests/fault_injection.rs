//! Failure injection: transient MDS outages must not lose committed-
//! queue operations — the independent-commit resubmission absorbs them
//! (Section III.E-1's "resubmit the operation until it succeeds").
//!
//! Group commit adds two hazards covered here: an outage striking *inside*
//! a batched message must disaggregate the failed ops into single-op
//! retries without losing or duplicating anything, and a lost reply must
//! not make the replayed creation burn its retry budget against its own
//! already-applied DFS entry.

use std::sync::Arc;

use fsapi::{Credentials, FileSystem, FsError};
use pacon::commit::worker::WorkerStep;
use pacon::{PaconConfig, PaconRegion};
use simnet::{ClientId, LatencyProfile, Topology};

#[test]
fn transient_mds_outage_is_absorbed_by_resubmission() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(1, 2), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));

    // Arm 25 transient failures, then push 40 creates through.
    dfs.inject_mds_failures(0, 25);
    for i in 0..40 {
        c.create(&format!("/job/f{i:02}"), &cred, 0o644).unwrap();
    }
    region.quiesce();
    assert_eq!(dfs.mds_counter("injected_failures"), 25, "all faults fired");
    // Every create survived the outage.
    assert_eq!(dfs.client().readdir("/job", &cred).unwrap().len(), 40);
    let report = region.report();
    assert_eq!(report.committed, 40);
    assert!(report.resubmitted >= 25, "each fault forces at least one resubmission");
    region.shutdown().unwrap();
}

#[test]
fn client_side_sync_paths_surface_transient_errors() {
    // Synchronous paths (redirection, getattr misses) see the raw error —
    // Pacon does not mask DFS failures outside the commit pipeline.
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    dfs.client().create("/outside", &cred, 0o644).unwrap();
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(1, 1), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));
    dfs.inject_mds_failures(0, 1);
    assert!(matches!(c.stat("/outside", &cred), Err(FsError::Backend(_))));
    // Next attempt succeeds (fault consumed).
    assert!(c.stat("/outside", &cred).unwrap().is_file());
    region.shutdown().unwrap();
}

#[test]
fn persistent_outage_exhausts_the_retry_budget() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let mut config = PaconConfig::new("/job", Topology::new(1, 1), cred);
    config.max_commit_retries = 10;
    let region = PaconRegion::launch(config, &dfs).unwrap();
    let c = region.client(ClientId(0));
    // Far more failures than the budget allows.
    dfs.inject_mds_failures(0, 1_000);
    c.create("/job/doomed", &cred, 0o644).unwrap();
    region.quiesce();
    let report = region.report();
    assert_eq!(report.committed, 0);
    assert_eq!(report.discarded, 1, "retry budget must bound the outage");
    // Primary copy still serves the application.
    assert!(c.stat("/job/doomed", &cred).unwrap().is_file());
    region.shutdown().unwrap();
}

/// MDS outage striking mid-batch: the failed ops disaggregate into the
/// single-op retry backlog, the rest of the batch commits, and nothing is
/// lost or duplicated. Every counter reconciles with the op count.
#[test]
fn mid_batch_outage_disaggregates_into_single_op_retries() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch_paused(
        PaconConfig::new("/job", Topology::new(1, 1), cred).with_commit_batch(8),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));

    // Exactly one full batch: the 8th create flushes the buffer.
    for i in 0..8 {
        c.create(&format!("/job/f{i}"), &cred, 0o644).unwrap();
    }
    // The outage starts before the commit process dequeues the batch and
    // fails its first 3 ops (per-request fault consumption).
    dfs.inject_mds_failures(0, 3);

    let mut w = region.take_worker(0);
    assert_eq!(
        w.step(),
        WorkerStep::Batch { committed: 5, retried: 3, discarded: 0 },
        "partial batch failure must settle per-op"
    );
    assert!(!w.backlog_empty(), "failed ops sit in the single-op retry backlog");

    // Drain: the disaggregated retries go through the plain single-op path.
    let mut spins = 0;
    while !region.core().drained() {
        w.step();
        spins += 1;
        assert!(spins < 10_000, "retries never converged");
    }

    // No lost ops, no duplicates.
    let mut names = dfs.client().readdir("/job", &cred).unwrap();
    names.sort();
    assert_eq!(names, (0..8).map(|i| format!("f{i}")).collect::<Vec<_>>());

    // Counters reconcile with the op count.
    let report = region.report();
    let counters = &region.core().counters;
    assert_eq!(report.committed, 8);
    assert_eq!(report.resubmitted, 3);
    assert_eq!(report.discarded, 0);
    assert_eq!(counters.get("commit_errors"), 0);
    assert_eq!(report.batches_flushed, 1);
    assert_eq!(report.batched_ops, 8);
    assert_eq!(report.ops_enqueued, 8);
    assert_eq!(report.ops_completed, 8);
    assert_eq!(
        report.committed + report.discarded + counters.get("commit_errors")
            + report.coalesced_cancel + report.coalesced_collapse,
        report.ops_enqueued,
        "every enqueued op must be accounted for exactly once"
    );
    // One batched RPC for the flush; the MDS saw all 8 ops inside it.
    assert_eq!(dfs.mds_counter("batch"), 1);
    assert_eq!(dfs.mds_counter("batch_ops"), 8);
    assert_eq!(dfs.mds_counter("injected_failures"), 3);
}

/// Regression: a creation whose first attempt hit a transient backend
/// fault *after* the MDS applied it (reply lost) must treat the replay's
/// `AlreadyExists` as idempotent success — not burn retry budget against
/// its own entry and miscount it as dropped.
#[test]
fn replayed_create_after_lost_reply_is_idempotent_success() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let mut config = PaconConfig::new("/job", Topology::new(1, 1), cred);
    // A tight budget makes the pre-fix failure mode (retrying
    // AlreadyExists until the budget drops the op) unmissable.
    config.max_commit_retries = 4;
    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    let c = region.client(ClientId(0));

    c.create("/job/once", &cred, 0o644).unwrap();
    // The create applies on the MDS but its reply is lost.
    dfs.inject_mds_reply_loss(0, 1);

    let mut w = region.take_worker(0);
    assert_eq!(w.step(), WorkerStep::Retried, "lost reply surfaces as a backend fault");
    assert!(dfs.client().stat("/job/once", &cred).unwrap().is_file(), "op applied server-side");
    assert_eq!(
        w.step(),
        WorkerStep::Committed,
        "replay must recognize its own entry instead of retrying"
    );

    let report = region.report();
    assert_eq!(report.committed, 1);
    assert_eq!(report.idempotent_replays, 1);
    assert_eq!(report.resubmitted, 1);
    assert_eq!(report.discarded, 0, "no budget burned on the replay");
    assert!(region.core().drained());
    assert!(c.stat("/job/once", &cred).unwrap().is_file());
}

/// The same lost-reply hazard inside a batch: the faulted op disaggregates
/// carrying its backend-fault history, so its single-op replay is still
/// recognized as idempotent.
#[test]
fn lost_reply_mid_batch_replays_idempotently() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let mut config =
        PaconConfig::new("/job", Topology::new(1, 1), cred).with_commit_batch(4);
    config.max_commit_retries = 4;
    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    let c = region.client(ClientId(0));

    for i in 0..4 {
        c.create(&format!("/job/g{i}"), &cred, 0o644).unwrap();
    }
    // First op of the batch applies but its reply is lost.
    dfs.inject_mds_reply_loss(0, 1);

    let mut w = region.take_worker(0);
    assert_eq!(w.step(), WorkerStep::Batch { committed: 3, retried: 1, discarded: 0 });
    assert_eq!(w.step(), WorkerStep::Committed, "disaggregated replay is idempotent");

    let report = region.report();
    assert_eq!(report.committed, 4);
    assert_eq!(report.idempotent_replays, 1);
    assert_eq!(report.discarded, 0);
    assert!(region.core().drained());
    let mut names = dfs.client().readdir("/job", &cred).unwrap();
    names.sort();
    assert_eq!(names, (0..4).map(|i| format!("g{i}")).collect::<Vec<_>>());
}
