//! Randomized cross-backend equivalence: arbitrary op sequences applied
//! through Pacon (with threaded commit) and directly to a reference DFS
//! must agree on every observable — the application view immediately and
//! the backup copy after quiescing.

use std::sync::Arc;

use fsapi::{Credentials, FileSystem, FsError};
use pacon::{PaconConfig, PaconRegion};
use proptest::prelude::*;
use simnet::{ClientId, LatencyProfile, Topology};

#[derive(Debug, Clone)]
enum Op {
    Mkdir(u8),
    Create(u8),
    Unlink(u8),
    Write(u8, u16),
    Stat(u8),
}

/// Path universe: 3 dirs x 4 file slots + the dirs themselves.
fn dir_of(i: u8) -> String {
    format!("/w/d{}", i % 3)
}
fn file_of(i: u8) -> String {
    format!("/w/d{}/f{}", (i / 4) % 3, i % 4)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => any::<u8>().prop_map(Op::Mkdir),
        4 => any::<u8>().prop_map(Op::Create),
        2 => any::<u8>().prop_map(Op::Unlink),
        2 => (any::<u8>(), 0u16..2048).prop_map(|(i, n)| Op::Write(i, n)),
        2 => any::<u8>().prop_map(Op::Stat),
    ]
}

fn apply(fs: &dyn FileSystem, cred: &Credentials, op: &Op) -> Result<(), FsError> {
    match op {
        Op::Mkdir(i) => fs.mkdir(&dir_of(*i), cred, 0o755),
        Op::Create(i) => fs.create(&file_of(*i), cred, 0o644),
        Op::Unlink(i) => fs.unlink(&file_of(*i), cred),
        Op::Write(i, n) => {
            fs.write(&file_of(*i), cred, 0, &vec![(*i).wrapping_add(1); *n as usize]).map(|_| ())
        }
        Op::Stat(i) => fs.stat(&file_of(*i), cred).map(|_| ()),
    }
}

fn observe(fs: &dyn FileSystem, cred: &Credentials) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for i in 0..12u8 {
        let p = file_of(i);
        if let Ok(st) = fs.stat(&p, cred) {
            out.push((p, st.size));
        }
    }
    for d in 0..3u8 {
        if fs.stat(&dir_of(d), cred).is_ok() {
            out.push((dir_of(d), u64::MAX));
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn pacon_matches_reference_on_random_sequences(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let profile = Arc::new(LatencyProfile::zero());
        let cred = Credentials::new(1, 1);

        let ref_dfs = dfs::DfsCluster::with_default_config(Arc::clone(&profile));
        let rfs = ref_dfs.client();
        rfs.mkdir("/w", &cred, 0o777).unwrap();

        let dfs = dfs::DfsCluster::with_default_config(Arc::clone(&profile));
        let region = PaconRegion::launch(
            PaconConfig::new("/w", Topology::new(2, 1), cred),
            &dfs,
        ).unwrap();
        let client = region.client(ClientId(0));

        for op in &ops {
            let a = apply(&client, &cred, op);
            let b = apply(&rfs, &cred, op);
            // Outcomes must agree (both Ok or both the same error class).
            match (&a, &b) {
                (Ok(()), Ok(())) => {}
                (Err(x), Err(y)) => prop_assert_eq!(
                    std::mem::discriminant(x),
                    std::mem::discriminant(y),
                    "different errors for {:?}: pacon={:?} ref={:?}", op, x, y
                ),
                other => prop_assert!(false, "divergent outcome for {:?}: {:?}", op, other),
            }
        }

        // Application view matches the reference now...
        prop_assert_eq!(observe(&client, &cred), observe(&rfs, &cred));
        // ...and the backup copy matches after draining the queues.
        region.quiesce();
        prop_assert_eq!(observe(&dfs.client(), &cred), observe(&rfs, &cred));
        region.shutdown().unwrap();
    }
}
