//! Full-stack smoke: mdtest-style phases through every backend at small
//! scale, verifying op counts and error-freedom end to end (workload
//! generator -> fsapi -> backend -> substrate).

use std::sync::Arc;

use fsapi::{Credentials, FileSystem};
use pacon::{PaconConfig, PaconRegion};
use simnet::{ClientId, LatencyProfile, NodeId, Topology};
use workloads::mdtest;
use workloads::ops::exec_all;

const ITEMS: u32 = 20;

fn run_phases(mk_client: impl Fn(u32) -> Box<dyn FileSystem>, cred: &Credentials) {
    // mkdir + create phases per client, then each client stats the whole
    // universe and lists the directory.
    for c in 0..4u32 {
        let fs = mk_client(c);
        let (ok, err) = exec_all(fs.as_ref(), cred, &mdtest::mkdir_phase("/w", c, ITEMS));
        assert_eq!((ok, err), (ITEMS as u64, 0));
        let (ok, err) = exec_all(fs.as_ref(), cred, &mdtest::create_phase("/w", c, ITEMS));
        assert_eq!((ok, err), (ITEMS as u64, 0));
    }
    let universe: Vec<String> =
        (0..4).flat_map(|c| mdtest::created_files("/w", c, ITEMS)).collect();
    for c in 0..4u32 {
        let fs = mk_client(c);
        let (ok, err) =
            exec_all(fs.as_ref(), cred, &mdtest::random_stat_phase(&universe, 50, c as u64));
        assert_eq!((ok, err), (50, 0));
        let names = fs.readdir("/w", cred).unwrap();
        assert_eq!(names.len(), (2 * 4 * ITEMS) as usize);
    }
    // Cleanup phase: unlink own files, rmdir own dirs.
    for c in 0..4u32 {
        let fs = mk_client(c);
        for f in mdtest::created_files("/w", c, ITEMS) {
            fs.unlink(&f, cred).unwrap();
        }
        for op in mdtest::mkdir_phase("/w", c, ITEMS) {
            if let workloads::ops::FsOp::Mkdir(p, _) = op {
                fs.rmdir(&p, cred).unwrap();
            }
        }
    }
    let fs = mk_client(0);
    assert_eq!(fs.readdir("/w", cred).unwrap().len(), 0);
}

#[test]
fn beegfs_full_stack() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    dfs.client().mkdir("/w", &cred, 0o777).unwrap();
    run_phases(|_| Box::new(dfs.client()), &cred);
}

#[test]
fn indexfs_full_stack() {
    let cluster = indexfs::IndexFsCluster::with_default_config(
        Topology::new(2, 2),
        Arc::new(LatencyProfile::zero()),
    )
    .unwrap();
    let cred = Credentials::new(1, 1);
    cluster.client(NodeId(0)).mkdir("/w", &cred, 0o777).unwrap();
    run_phases(|c| Box::new(cluster.client(NodeId(c % 2))), &cred);
}

#[test]
fn pacon_full_stack() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch(
        PaconConfig::new("/w", Topology::new(2, 2), cred),
        &dfs,
    )
    .unwrap();
    run_phases(|c| Box::new(region.client(ClientId(c))), &cred);
    // After the cleanup phase the backup copy is empty too.
    region.quiesce();
    assert_eq!(dfs.client().readdir("/w", &cred).unwrap().len(), 0);
    region.shutdown().unwrap();
}
