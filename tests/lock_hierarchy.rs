//! Whole-stack lock-hierarchy audit.
//!
//! Drives a threaded Pacon region (real commit-process threads, real
//! queues), a DFS cluster, an in-memory KV cluster and the IndexFS
//! client through a representative metadata workload, then asserts the
//! syncguard report is clean: no lock-order cycles, no level-hierarchy
//! violations, no unpermitted blocking calls while holding locks.
//!
//! Run with `cargo test --features syncguard/check --test lock_hierarchy`;
//! in passthrough mode the assertions are skipped (nothing is recorded).

use std::sync::Arc;

use fsapi::{Credentials, FileSystem};
use pacon::config::PaconConfig;
use pacon::region::PaconRegion;
use simnet::{LatencyProfile, Topology};

#[test]
fn threaded_workload_has_clean_lock_report() {
    let dfs = dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()));
    let region = PaconRegion::launch(
        PaconConfig::new("/app", Topology::new(2, 2), Credentials::new(1, 1)),
        &dfs,
    )
    .unwrap();

    let cred = Credentials::new(1, 1);
    let mut handles = Vec::new();
    for c in 0..4u32 {
        let client = region.client(simnet::ClientId(c));
        handles.push(std::thread::spawn(move || {
            let dir = format!("/app/t{c}");
            client.mkdir(&dir, &cred, 0o755).unwrap();
            for i in 0..8 {
                let f = format!("{dir}/f{i}");
                client.create(&f, &cred, 0o644).unwrap();
                client.write(&f, &cred, 0, b"payload").unwrap();
                client.stat(&f, &cred).unwrap();
            }
            // Dependent ops: readdir and rmdir run barrier commits while
            // other threads keep publishing.
            let names = client.readdir(&dir, &cred).unwrap();
            assert_eq!(names.len(), 8);
            for i in 0..8 {
                client.unlink(&format!("{dir}/f{i}"), &cred).unwrap();
            }
            client.rmdir(&dir, &cred).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    region.sync_barrier();
    region.shutdown().unwrap();

    // Group-commit configuration: the publish buffer is engaged, so the
    // buffer-held-across-send path (and its blocking permit) is exercised.
    let region2 = PaconRegion::launch(
        PaconConfig::new("/gc", Topology::new(2, 2), Credentials::new(1, 1))
            .with_commit_batch(4),
        &dfs,
    )
    .unwrap();
    let client = region2.client(simnet::ClientId(0));
    client.mkdir("/gc/d", &cred, 0o755).unwrap();
    for i in 0..10 {
        client.create(&format!("/gc/d/f{i}"), &cred, 0o644).unwrap();
    }
    assert_eq!(client.readdir("/gc/d", &cred).unwrap().len(), 10);
    region2.sync_barrier();
    region2.shutdown().unwrap();

    // A second backend shape: IndexFS bulk-insertion client.
    let ifs = indexfs::IndexFsCluster::with_default_config(
        Topology::new(2, 2),
        Arc::new(LatencyProfile::zero()),
    )
    .unwrap();
    let cl = ifs.client(simnet::NodeId(0));
    cl.mkdir("/bulk", &cred, 0o755).unwrap();
    cl.bulk_begin();
    for i in 0..16 {
        cl.create(&format!("/bulk/f{i}"), &cred, 0o644).unwrap();
    }
    cl.bulk_flush().unwrap();
    assert_eq!(cl.readdir("/bulk", &cred).unwrap().len(), 16);

    if !syncguard::check_enabled() {
        return;
    }
    // `SYNCGUARD_DOT=1 cargo test --features syncguard/check --test
    // lock_hierarchy -- --nocapture` dumps the observed lock-order graph
    // (the DESIGN.md figure is generated this way).
    if std::env::var_os("SYNCGUARD_DOT").is_some() {
        println!("{}", syncguard::dot());
    }
    let report = syncguard::report();
    assert!(
        report.is_clean(),
        "lock hierarchy violated:\ncycles: {:#?}\nlevel violations: {:#?}\nblocking: {:#?}",
        report.cycles,
        report.level_violations,
        report.blocking_violations
    );
    // The workload must actually have exercised the hierarchy.
    let classes: Vec<&str> = report.classes.iter().map(|c| c.name.as_str()).collect();
    for expected in ["mq.queue", "pacon.barrier.slot", "pacon.barrier.state", "dfs.namespace"] {
        assert!(classes.contains(&expected), "class {expected} never acquired: {classes:?}");
    }
}
