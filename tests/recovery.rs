//! Failure-recovery integration (Section III.G): checkpoints are subtree
//! copies on the DFS; rollback restores them and rebuilds the cache;
//! region isolation keeps failures from leaking across applications.

use std::sync::Arc;

use fsapi::{Credentials, FileSystem, FsError};
use pacon::{PaconConfig, PaconRegion};
use simnet::{ClientId, LatencyProfile, Topology};

fn dfs() -> Arc<dfs::DfsCluster> {
    dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()))
}

#[test]
fn checkpoint_copies_data_and_rollback_restores_it() {
    let dfs = dfs();
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(2, 2), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));
    c.mkdir("/job/data", &cred, 0o755).unwrap();
    for i in 0..8 {
        let p = format!("/job/data/f{i}");
        c.create(&p, &cred, 0o644).unwrap();
        c.write(&p, &cred, 0, format!("payload-{i}").as_bytes()).unwrap();
    }
    let stats = region.checkpoint("v1").unwrap();
    assert_eq!(stats.files, 8);
    assert!(stats.dirs >= 2);
    assert!(stats.bytes > 0);

    // Mutate after the checkpoint.
    c.unlink("/job/data/f0", &cred).unwrap();
    c.create("/job/data/extra", &cred, 0o644).unwrap();
    c.write("/job/data/f1", &cred, 0, b"OVERWRITTEN").unwrap();
    region.quiesce();

    // Roll back: exact checkpoint state, including file contents.
    region.rollback("v1").unwrap();
    let c = region.client(ClientId(1));
    for i in 0..8 {
        let p = format!("/job/data/f{i}");
        assert_eq!(c.read(&p, &cred, 0, 64).unwrap(), format!("payload-{i}").as_bytes());
    }
    assert_eq!(c.stat("/job/data/extra", &cred), Err(FsError::NotFound));
    region.shutdown().unwrap();
}

#[test]
fn rollback_to_missing_checkpoint_is_safe() {
    let dfs = dfs();
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(1, 1), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));
    c.create("/job/precious", &cred, 0o644).unwrap();
    // No checkpoint named "nope": rollback must refuse and leave state
    // untouched.
    assert!(region.rollback("nope").is_err());
    assert!(c.stat("/job/precious", &cred).unwrap().is_file());
    region.shutdown().unwrap();
}

#[test]
fn crash_loses_only_uncommitted_work() {
    let dfs = dfs();
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(1, 2), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));
    c.create("/job/committed", &cred, 0o644).unwrap();
    region.quiesce(); // this one reaches the DFS
    c.create("/job/maybe-lost", &cred, 0o644).unwrap();
    region.abort();
    drop(c);
    drop(region);

    // After restart, the committed file is there; the other may or may
    // not be (crash raced the commit) — but stat must never error oddly.
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(1, 2), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));
    assert!(c.stat("/job/committed", &cred).unwrap().is_file());
    match c.stat("/job/maybe-lost", &cred) {
        Ok(st) => assert!(st.is_file()),
        Err(FsError::NotFound) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
    region.shutdown().unwrap();
}

#[test]
fn region_failure_is_isolated_from_other_regions() {
    let dfs = dfs();
    let cred_a = Credentials::new(1, 1);
    let cred_b = Credentials::new(2, 2);
    let region_a = PaconRegion::launch(
        PaconConfig::new("/appA", Topology::new(1, 1), cred_a),
        &dfs,
    )
    .unwrap();
    let region_b = PaconRegion::launch(
        PaconConfig::new("/appB", Topology::new(1, 1), cred_b),
        &dfs,
    )
    .unwrap();
    let a = region_a.client(ClientId(0));
    let b = region_b.client(ClientId(0));
    a.create("/appA/x", &cred_a, 0o644).unwrap();
    b.create("/appB/y", &cred_b, 0o644).unwrap();
    region_b.quiesce();

    // Region A crashes; region B is completely unaffected.
    region_a.abort();
    drop(a);
    drop(region_a);
    assert!(b.stat("/appB/y", &cred_b).unwrap().is_file());
    b.create("/appB/z", &cred_b, 0o644).unwrap();
    region_b.shutdown().unwrap();
    assert!(dfs.client().stat("/appB/z", &cred_b).unwrap().is_file());
}
