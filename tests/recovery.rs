//! Failure-recovery integration (Section III.G): checkpoints are subtree
//! copies on the DFS; rollback restores them and rebuilds the cache;
//! region isolation keeps failures from leaking across applications.
//!
//! Durable-mode additions: the WAL-backed commit queue must replay
//! buffered-but-unpublished ops after a crash, survive a crash *during*
//! recovery (double replay), and must not resurrect mutations that a
//! checkpoint rollback discarded.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use fsapi::{Credentials, FileSystem, FsError};
use pacon::commit::CrashSwitch;
use pacon::{PaconConfig, PaconRegion};
use simnet::{ClientId, LatencyProfile, Topology};

fn dfs() -> Arc<dfs::DfsCluster> {
    dfs::DfsCluster::with_default_config(Arc::new(LatencyProfile::zero()))
}

/// A unique, empty WAL directory per test invocation.
fn fresh_wal_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pacon-recovery-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn checkpoint_copies_data_and_rollback_restores_it() {
    let dfs = dfs();
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(2, 2), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));
    c.mkdir("/job/data", &cred, 0o755).unwrap();
    for i in 0..8 {
        let p = format!("/job/data/f{i}");
        c.create(&p, &cred, 0o644).unwrap();
        c.write(&p, &cred, 0, format!("payload-{i}").as_bytes()).unwrap();
    }
    let stats = region.checkpoint("v1").unwrap();
    assert_eq!(stats.files, 8);
    assert!(stats.dirs >= 2);
    assert!(stats.bytes > 0);

    // Mutate after the checkpoint.
    c.unlink("/job/data/f0", &cred).unwrap();
    c.create("/job/data/extra", &cred, 0o644).unwrap();
    c.write("/job/data/f1", &cred, 0, b"OVERWRITTEN").unwrap();
    region.quiesce();

    // Roll back: exact checkpoint state, including file contents.
    region.rollback("v1").unwrap();
    let c = region.client(ClientId(1));
    for i in 0..8 {
        let p = format!("/job/data/f{i}");
        assert_eq!(c.read(&p, &cred, 0, 64).unwrap(), format!("payload-{i}").as_bytes());
    }
    assert_eq!(c.stat("/job/data/extra", &cred), Err(FsError::NotFound));
    region.shutdown().unwrap();
}

#[test]
fn rollback_to_missing_checkpoint_is_safe() {
    let dfs = dfs();
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(1, 1), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));
    c.create("/job/precious", &cred, 0o644).unwrap();
    // No checkpoint named "nope": rollback must refuse and leave state
    // untouched.
    assert!(region.rollback("nope").is_err());
    assert!(c.stat("/job/precious", &cred).unwrap().is_file());
    region.shutdown().unwrap();
}

#[test]
fn crash_loses_only_uncommitted_work() {
    let dfs = dfs();
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(1, 2), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));
    c.create("/job/committed", &cred, 0o644).unwrap();
    region.quiesce(); // this one reaches the DFS
    c.create("/job/maybe-lost", &cred, 0o644).unwrap();
    region.abort();
    drop(c);
    drop(region);

    // After restart, the committed file is there; the other may or may
    // not be (crash raced the commit) — but stat must never error oddly.
    let region = PaconRegion::launch(
        PaconConfig::new("/job", Topology::new(1, 2), cred),
        &dfs,
    )
    .unwrap();
    let c = region.client(ClientId(0));
    assert!(c.stat("/job/committed", &cred).unwrap().is_file());
    match c.stat("/job/maybe-lost", &cred) {
        Ok(st) => assert!(st.is_file()),
        Err(FsError::NotFound) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
    region.shutdown().unwrap();
}

/// Durable mode closes the window `crash_loses_only_uncommitted_work`
/// documents: ops acknowledged locally but still sitting in the publish
/// buffer when the node dies are journaled, and the next launch replays
/// them into the DFS before serving clients.
#[test]
fn durable_region_recovers_buffered_ops_after_crash() {
    let dfs = dfs();
    let cred = Credentials::new(1, 1);
    let wal_dir = fresh_wal_dir("buffered");
    let config = PaconConfig::new("/job", Topology::new(1, 1), cred)
        .with_commit_batch(16)
        .with_durability(&wal_dir);

    let region = PaconRegion::launch_paused(config.clone(), &dfs).unwrap();
    let c = region.client(ClientId(0));
    for i in 0..5 {
        let p = format!("/job/f{i}");
        c.create(&p, &cred, 0o644).unwrap();
        c.write(&p, &cred, 0, format!("payload-{i}").as_bytes()).unwrap();
    }
    // Everything is below the flush threshold: nothing reached the DFS.
    assert!(dfs.client().readdir("/job", &cred).unwrap().is_empty());
    region.abort();
    drop(c);
    drop(region);

    // Relaunch against the same log directory: recovery replays the five
    // creates and their inline snapshots before the region opens.
    let region = PaconRegion::launch_paused(config.clone(), &dfs).unwrap();
    assert_eq!(region.core().incarnation, 2);
    let r = region.report();
    assert_eq!(r.wal_replayed, 10, "5 creates + 5 writeback snapshots");
    assert_eq!(r.recovery_applied, 10);
    assert_eq!(r.recovery_skipped, 0);
    for i in 0..5 {
        let p = format!("/job/f{i}");
        assert_eq!(
            dfs.client().read(&p, &cred, 0, 64).unwrap(),
            format!("payload-{i}").as_bytes(),
            "recovered content must match the last acknowledged write"
        );
    }
    // The logs were reset after replay, so every replay identity from
    // incarnation 1 is confirmed-and-gone: the launch pruned them.
    assert_eq!(dfs.seen_len(), 0, "seen-cache must not leak across recoveries");
    assert!(region.report().replay_pruned > 0);
    drop(region);

    // Recovery truncated the logs: a third launch has nothing to replay.
    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    assert_eq!(region.report().wal_replayed, 0);
}

/// Regression (review, dfs layer): `write_idempotent` must not skip a
/// generation-0 writeback just because the path already has a recorded
/// generation. Generation 0 means the writer could not learn the file's
/// creation generation (it predates the writer's launch) — that is
/// "unknown", not "older than everything", and the write is an
/// acknowledged one: skipping it drops durable data.
#[test]
fn generation_zero_writeback_applies_over_recorded_generations() {
    let dfs = dfs();
    let cred = Credentials::new(1, 1);
    let fs = dfs.client();
    // Incarnation 1 creates the file durably: its generation is recorded
    // in the cluster seen-cache.
    let create_id = dfs::OpId::pack_write_id(1, 1);
    fs.apply_batch_idempotent(
        &[dfs::BatchOp::Create { path: "/f".into(), mode: 0o644 }],
        &[dfs::OpId { write_id: create_id, generation: create_id }],
        &cred,
    )
    .pop()
    .unwrap()
    .unwrap();
    // A later incarnation replays an acknowledged write that could not
    // learn the creation generation: it must apply.
    let wid = dfs::OpId { write_id: dfs::OpId::pack_write_id(2, 1), generation: 0 };
    fs.write_idempotent("/f", &cred, b"acknowledged", wid).unwrap();
    assert_eq!(
        fs.read("/f", &cred, 0, 64).unwrap(),
        b"acknowledged",
        "generation-0 writeback was skipped as stale"
    );
    assert_eq!(fs.counters.get("replay_skipped_write"), 0);
    // The exact same write replayed again (crash during recovery) still
    // no-ops by write_id identity.
    fs.write_idempotent("/f", &cred, b"acknowledged", wid).unwrap();
    assert_eq!(fs.counters.get("replay_skipped_write"), 1);
}

/// Regression (review): an acknowledged overwrite of a file created by
/// an *earlier* incarnation must survive a crash. (With the current
/// client the overwrite routes through the direct data plane — files
/// loaded from the DFS are large/committed — but the guarantee must
/// hold whichever way the client routes it; the journaled-writeback
/// variant of the same guarantee is pinned at the dfs layer above.)
#[test]
fn writeback_to_preexisting_file_recovers_across_incarnations() {
    let dfs = dfs();
    let cred = Credentials::new(1, 1);
    let wal_dir = fresh_wal_dir("preexisting");
    let config = PaconConfig::new("/job", Topology::new(1, 1), cred)
        .with_commit_batch(16)
        .with_durability(&wal_dir);

    // Incarnation 1: create the file and commit it all the way through.
    let region = PaconRegion::launch(config.clone(), &dfs).unwrap();
    let c = region.client(ClientId(0));
    c.create("/job/f", &cred, 0o644).unwrap();
    c.write("/job/f", &cred, 0, b"old").unwrap();
    region.shutdown().unwrap();
    drop(c);
    drop(region);
    assert_eq!(dfs.client().read("/job/f", &cred, 0, 64).unwrap(), b"old");

    // Incarnation 2: overwrite — acknowledged and journaled, but the
    // node dies before the commit queue publishes it.
    let region = PaconRegion::launch_paused(config.clone(), &dfs).unwrap();
    let c = region.client(ClientId(0));
    c.write("/job/f", &cred, 0, b"new-payload").unwrap();
    region.abort();
    drop(c);
    drop(region);

    // Incarnation 3: recovery must apply the acknowledged overwrite
    // instead of skipping it as "stale".
    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    assert_eq!(
        dfs.client().read("/job/f", &cred, 0, 64).unwrap(),
        b"new-payload",
        "acknowledged write to a pre-incarnation file was dropped on recovery"
    );
    assert_eq!(region.report().recovery_skipped, 0);
    drop(region);
}

/// Crash *during* recovery: the half-replayed log replays again on the
/// next launch, and the seen-cache turns the already-applied prefix into
/// no-ops instead of double-applying it.
#[test]
fn crash_during_recovery_replays_idempotently() {
    let dfs = dfs();
    let cred = Credentials::new(1, 1);
    let wal_dir = fresh_wal_dir("double-replay");
    let config = PaconConfig::new("/job", Topology::new(1, 1), cred)
        .with_commit_batch(16)
        .with_durability(&wal_dir);

    let region = PaconRegion::launch_paused(config.clone(), &dfs).unwrap();
    let c = region.client(ClientId(0));
    for i in 0..6 {
        c.create(&format!("/job/f{i}"), &cred, 0o644).unwrap();
    }
    region.abort();
    drop(c);
    drop(region);

    // First recovery attempt dies after three replayed ops, before any
    // truncation.
    let mut interrupted = config.clone();
    interrupted.recovery_crash_after = Some(3);
    let err = match PaconRegion::launch_paused(interrupted, &dfs) {
        Ok(_) => panic!("interrupted recovery must fail the launch"),
        Err(e) => e,
    };
    assert!(CrashSwitch::is_crash_error(&err), "unexpected launch error: {err}");
    assert_eq!(dfs.client().readdir("/job", &cred).unwrap().len(), 3);

    // Second attempt replays the whole log; the first three ops no-op.
    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    let r = region.report();
    assert_eq!(r.wal_replayed, 6);
    assert_eq!(r.recovery_applied, 6);
    assert_eq!(r.recovery_skipped, 0);
    assert!(
        dfs.mds_counter("replay_noop") >= 3,
        "the replayed prefix must be recognized, not re-applied"
    );
    let mut names = dfs.client().readdir("/job", &cred).unwrap();
    names.sort();
    assert_eq!(names, (0..6).map(|i| format!("f{i}")).collect::<Vec<_>>());
}

/// Checkpoint rollback with ops buffered but never published: the
/// rollback drops them from the publish buffers *and* resets the WALs, so
/// the next launch cannot resurrect rolled-back mutations from the log.
#[test]
fn rollback_does_not_resurrect_walled_ops() {
    let dfs = dfs();
    let cred = Credentials::new(1, 1);
    let wal_dir = fresh_wal_dir("rollback");
    let config = PaconConfig::new("/job", Topology::new(1, 1), cred)
        .with_commit_batch(16)
        .with_durability(&wal_dir);

    let region = PaconRegion::launch(config.clone(), &dfs).unwrap();
    let c = region.client(ClientId(0));
    c.create("/job/keep", &cred, 0o644).unwrap();
    c.write("/job/keep", &cred, 0, b"keep-data").unwrap();
    region.quiesce();
    region.checkpoint("v1").unwrap();

    // The node's worker dies; the app buffers three more creates that
    // never publish — but they are journaled.
    region.abort();
    for i in 0..3 {
        c.create(&format!("/job/ghost{i}"), &cred, 0o644).unwrap();
    }

    region.rollback("v1").unwrap();
    assert_eq!(region.report().rollback_dropped_ops, 3);
    drop(c);
    drop(region);

    // Relaunch on the same log directory: nothing replays, the ghosts
    // stay dead, the checkpointed file survives with its content.
    let region = PaconRegion::launch_paused(config, &dfs).unwrap();
    assert_eq!(region.report().wal_replayed, 0);
    for i in 0..3 {
        assert_eq!(
            dfs.client().stat(&format!("/job/ghost{i}"), &cred),
            Err(FsError::NotFound),
            "rolled-back mutation resurrected from the WAL"
        );
    }
    assert_eq!(dfs.client().read("/job/keep", &cred, 0, 64).unwrap(), b"keep-data");
}

#[test]
fn region_failure_is_isolated_from_other_regions() {
    let dfs = dfs();
    let cred_a = Credentials::new(1, 1);
    let cred_b = Credentials::new(2, 2);
    let region_a = PaconRegion::launch(
        PaconConfig::new("/appA", Topology::new(1, 1), cred_a),
        &dfs,
    )
    .unwrap();
    let region_b = PaconRegion::launch(
        PaconConfig::new("/appB", Topology::new(1, 1), cred_b),
        &dfs,
    )
    .unwrap();
    let a = region_a.client(ClientId(0));
    let b = region_b.client(ClientId(0));
    a.create("/appA/x", &cred_a, 0o644).unwrap();
    b.create("/appB/y", &cred_b, 0o644).unwrap();
    region_b.quiesce();

    // Region A crashes; region B is completely unaffected.
    region_a.abort();
    drop(a);
    drop(region_a);
    assert!(b.stat("/appB/y", &cred_b).unwrap().is_file());
    b.create("/appB/z", &cred_b, 0o644).unwrap();
    region_b.shutdown().unwrap();
    assert!(dfs.client().stat("/appB/z", &cred_b).unwrap().is_file());
}
