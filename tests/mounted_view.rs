//! The node's-eye view: a `MountTable` splices Pacon regions over their
//! workspaces with the raw DFS underneath — the composable equivalent of
//! the FS hooking the paper uses to deploy Pacon transparently.

use std::sync::Arc;

use fsapi::{Credentials, FileSystem, FsError, MountTable};
use pacon::{PaconConfig, PaconRegion};
use simnet::{ClientId, LatencyProfile, Topology};
use workloads::trace;

#[test]
fn mount_table_splices_pacon_over_the_dfs() {
    let profile = Arc::new(LatencyProfile::zero());
    let dfs = dfs::DfsCluster::with_default_config(profile);
    let cred = Credentials::new(1, 1);
    let region = PaconRegion::launch(
        PaconConfig::new("/scratch/app", Topology::new(2, 2), cred),
        &dfs,
    )
    .unwrap();

    // One process's file-system view: Pacon where the workspace is,
    // plain DFS everywhere else.
    let mut view = MountTable::new();
    view.mount("/", Box::new(dfs.client())).unwrap();
    view.mount("/scratch/app", Box::new(region.client(ClientId(0)))).unwrap();

    // Workspace ops go through Pacon (async commit: visible in the view
    // instantly, on the raw DFS only after quiesce).
    view.create("/scratch/app/result", &cred, 0o644).unwrap();
    assert!(view.stat("/scratch/app/result", &cred).unwrap().is_file());

    // Non-workspace ops go straight to the DFS.
    view.mkdir("/etc-like", &cred, 0o755).unwrap();
    assert!(dfs.client().stat("/etc-like", &cred).unwrap().is_dir());

    region.quiesce();
    assert!(dfs.client().stat("/scratch/app/result", &cred).unwrap().is_file());

    // Unmounting the region exposes the raw (committed) DFS content.
    let _pacon_fs = view.unmount("/scratch/app").unwrap();
    assert!(view.stat("/scratch/app/result", &cred).unwrap().is_file());
    region.shutdown().unwrap();
}

#[test]
fn trace_replay_through_a_mounted_view() {
    let profile = Arc::new(LatencyProfile::zero());
    let dfs = dfs::DfsCluster::with_default_config(profile);
    let cred = Credentials::new(1, 1);
    let region =
        PaconRegion::launch(PaconConfig::new("/w", Topology::new(1, 1), cred), &dfs).unwrap();

    let mut view = MountTable::new();
    view.mount("/", Box::new(dfs.client())).unwrap();
    view.mount("/w", Box::new(region.client(ClientId(0)))).unwrap();

    let text = "\
mkdir /w/out
create /w/out/a.dat 0644
write /w/out/a.dat 0 512
mkdir /elsewhere
create /elsewhere/log 0644
stat /w/out/a.dat
readdir /w/out
";
    let ops = trace::parse_trace(text).unwrap();
    for (_, op) in ops {
        op.exec(&view, &cred).unwrap();
    }
    assert_eq!(view.stat("/w/out/a.dat", &cred).unwrap().size, 512);
    // The non-workspace file bypassed Pacon entirely.
    assert!(dfs.client().stat("/elsewhere/log", &cred).unwrap().is_file());
    assert!(region.report().committed >= 2);
    region.shutdown().unwrap();
}

#[test]
fn view_without_root_mount_rejects_outside_paths() {
    let profile = Arc::new(LatencyProfile::zero());
    let dfs = dfs::DfsCluster::with_default_config(profile);
    let cred = Credentials::new(1, 1);
    let region =
        PaconRegion::launch(PaconConfig::new("/w", Topology::new(1, 1), cred), &dfs).unwrap();
    let mut view = MountTable::new();
    view.mount("/w", Box::new(region.client(ClientId(0)))).unwrap();
    view.create("/w/ok", &cred, 0o644).unwrap();
    assert_eq!(view.create("/outside", &cred, 0o644), Err(FsError::NotFound));
    region.shutdown().unwrap();
}
