//! The discrete-event driver and the real-thread runtime must agree on
//! functional outcomes: the same workload leaves the same DFS namespace
//! whether the commit processes run as threads (wall clock) or as DES
//! background processes (virtual time).

use std::sync::Arc;

use fsapi::Credentials;
use pacon::{PaconConfig, PaconRegion};
use simnet::{LatencyProfile, Topology};
use workloads::driver::{run_closed_loop, FsOpClient, PaconWorkerProc};
use workloads::mdtest;

fn final_namespace(dfs: &Arc<dfs::DfsCluster>) -> Vec<(String, fsapi::FileKind, u64)> {
    dfs.snapshot()
}

#[test]
fn des_and_threaded_runtimes_produce_identical_namespaces() {
    let cred = Credentials::new(1, 1);
    let topo = Topology::new(3, 4);
    let items = 30u32;

    // --- threaded run ---------------------------------------------------
    let profile = Arc::new(LatencyProfile::zero());
    let dfs_threads = dfs::DfsCluster::with_default_config(Arc::clone(&profile));
    {
        let region = PaconRegion::launch(
            PaconConfig::new("/w", topo, cred),
            &dfs_threads,
        )
        .unwrap();
        let lists: Vec<_> = topo
            .clients()
            .map(|c| {
                let mut ops = mdtest::mkdir_phase("/w", c.0, items / 2);
                ops.extend(mdtest::create_phase("/w", c.0, items));
                ops
            })
            .collect();
        workloads::threaded::run_threads(
            |i| Box::new(region.client(simnet::ClientId(i as u32))),
            cred,
            lists,
        );
        region.shutdown().unwrap();
    }

    // --- DES run ----------------------------------------------------------
    let profile = Arc::new(LatencyProfile::default()); // costs exercised too
    let dfs_des = dfs::DfsCluster::with_default_config(Arc::clone(&profile));
    {
        let region = PaconRegion::launch_paused(
            PaconConfig::new("/w", topo, cred),
            &dfs_des,
        )
        .unwrap();
        let clients: Vec<FsOpClient> = topo
            .clients()
            .map(|c| {
                let mut ops = mdtest::mkdir_phase("/w", c.0, items / 2);
                ops.extend(mdtest::create_phase("/w", c.0, items));
                FsOpClient::new(Box::new(region.client(c)), cred, ops)
            })
            .collect();
        let workers: Vec<PaconWorkerProc> = (0..topo.nodes as usize)
            .map(|n| PaconWorkerProc::new(region.take_worker(n)))
            .collect();
        let res = run_closed_loop(clients, workers);
        assert_eq!(res.measured_ops as u32, topo.total_clients() * (items + items / 2));
    }

    let a = final_namespace(&dfs_threads);
    let b = final_namespace(&dfs_des);
    assert_eq!(a, b, "threaded and DES runtimes must agree");
    assert_eq!(
        a.len() as u32,
        1 + 1 + topo.total_clients() * (items + items / 2),
        "root + /w + every created entry"
    );
}
