#!/usr/bin/env bash
# Regenerate every paper figure plus the supplementary experiments.
# Output lands on stdout; EXPERIMENTS.md records the reference results.
set -euo pipefail
cd "$(dirname "$0")/.."
bins=(
  fig01_client_scalability
  fig02_path_traversal_motivation
  fig07_single_app
  fig08_multi_app
  fig09_path_traversal
  fig10_overhead
  fig11_scalability
  fig12_madbench
  ablations
  bulk_insertion
  latency
  commit_batch
  read_path
  wal_commit
  qsim_scale
  reshard
)
for b in "${bins[@]}"; do
  echo "=== $b ==="
  cargo run --release -q -p pacon-bench --bin "$b"
  echo
done
