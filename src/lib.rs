//! `pacon-repro` — umbrella crate of the Pacon (IPDPS 2020) reproduction.
//!
//! Re-exports every workspace crate so the examples and cross-crate
//! integration tests read naturally. The actual implementation lives in
//! `crates/`:
//!
//! * [`pacon`] — the paper's contribution (partial consistency),
//! * [`dfs`] — the BeeGFS-like underlying DFS,
//! * [`indexfs`] — the IndexFS baseline over [`lsmkv`],
//! * [`memkv`] / [`mq`] — the memcached-like cache and the ZeroMQ-like
//!   commit queue,
//! * [`qsim`] / [`simnet`] — the discrete-event testbed model,
//! * [`workloads`] — mdtest / memaslap / MADbench2 drivers,
//! * [`fsapi`] — the shared file-system interface.

#![forbid(unsafe_code)]

pub use dfs;
pub use fsapi;
pub use indexfs;
pub use lsmkv;
pub use memkv;
pub use mq;
pub use pacon;
pub use qsim;
pub use simnet;
pub use workloads;
