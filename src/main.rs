//! `pacon-repro` — command-line front end of the reproduction.
//!
//! ```text
//! pacon-repro replay <trace-file> [options]   replay a text trace
//!     --backend pacon|beegfs|indexfs          (default: pacon)
//!     --workspace <dir>                       consistent region root
//!                                             (default: /w)
//!     --nodes <n> --clients-per-node <m>      cluster shape (default 2x2)
//!     --des                                   drive through the
//!                                             discrete-event testbed and
//!                                             report virtual throughput
//! pacon-repro trace-example                   print a sample trace
//! ```
//!
//! Trace format: see `workloads::trace`.

use std::process::ExitCode;
use std::sync::Arc;

use fsapi::{Credentials, FileSystem};
use pacon::{PaconConfig, PaconRegion};
use simnet::{ClientId, LatencyProfile, NodeId, Topology};
use workloads::driver::{run_closed_loop, FsOpClient, PaconWorkerProc};
use workloads::trace;

const SAMPLE_TRACE: &str = "\
# Sample trace: two clients building a small workspace.
mkdir /w/out 0755
@0 create /w/out/alpha.dat 0644
@0 write /w/out/alpha.dat 0 2048
@1 create /w/out/beta.dat 0644
@1 write /w/out/beta.dat 0 2048
@1 stat /w/out/alpha.dat
@0 read /w/out/beta.dat 0 2048
readdir /w/out
";

struct Args {
    trace_path: String,
    backend: String,
    workspace: String,
    nodes: u32,
    clients_per_node: u32,
    des: bool,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let trace_path = argv.next().ok_or("missing trace file")?;
    let mut args = Args {
        trace_path,
        backend: "pacon".into(),
        workspace: "/w".into(),
        nodes: 2,
        clients_per_node: 2,
        des: false,
    };
    while let Some(flag) = argv.next() {
        let mut val = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--backend" => args.backend = val("--backend")?,
            "--workspace" => args.workspace = val("--workspace")?,
            "--nodes" => {
                args.nodes = val("--nodes")?.parse().map_err(|_| "bad --nodes")?;
            }
            "--clients-per-node" => {
                args.clients_per_node =
                    val("--clients-per-node")?.parse().map_err(|_| "bad --clients-per-node")?;
            }
            "--des" => args.des = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn replay(args: Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.trace_path)
        .map_err(|e| format!("read {}: {e}", args.trace_path))?;
    let mut parsed = trace::parse_trace(&text).map_err(|e| e.to_string())?;
    if args.des && args.backend == "pacon" {
        // rmdir/readdir are synchronous barrier operations: they block on
        // the commit processes, which the single-threaded discrete-event
        // driver cannot interleave. Strip them with a warning.
        let before = parsed.len();
        parsed.retain(|(_, op)| {
            !matches!(op, workloads::FsOp::Rmdir(_) | workloads::FsOp::Readdir(_))
        });
        let dropped = before - parsed.len();
        if dropped > 0 {
            eprintln!(
                "warning: dropped {dropped} barrier op(s) (rmdir/readdir) — not supported \
                 for pacon under --des"
            );
        }
    }
    let total_ops = parsed.len();
    let lists = trace::per_client(parsed);
    let needed = lists.len() as u32;
    let topo = Topology::new(args.nodes, args.clients_per_node);
    if needed > topo.total_clients() {
        return Err(format!(
            "trace uses {needed} clients but the cluster has {}; raise --nodes/--clients-per-node",
            topo.total_clients()
        ));
    }

    let cred = Credentials::new(1000, 1000);
    let profile = Arc::new(if args.des {
        LatencyProfile::default()
    } else {
        LatencyProfile::zero()
    });
    let dfs = dfs::DfsCluster::with_default_config(Arc::clone(&profile));

    // Build per-client backend handles (+ background workers for pacon).
    let mut region: Option<Arc<PaconRegion>> = None;
    let mut indexfs_cluster = None;
    let mut workers: Vec<PaconWorkerProc> = Vec::new();
    let mk_setup_dirs = |fs: &dyn FileSystem| {
        let _ = fs.mkdir(&args.workspace, &cred, 0o777);
    };
    match args.backend.as_str() {
        "beegfs" => mk_setup_dirs(&dfs.client()),
        "indexfs" => {
            let c = indexfs::IndexFsCluster::with_default_config(topo, Arc::clone(&profile))
                .map_err(|e| e.to_string())?;
            mk_setup_dirs(&c.client(NodeId(0)));
            indexfs_cluster = Some(c);
        }
        "pacon" => {
            let r = if args.des {
                PaconRegion::launch_paused(
                    PaconConfig::new(&args.workspace, topo, cred),
                    &dfs,
                )
            } else {
                PaconRegion::launch(PaconConfig::new(&args.workspace, topo, cred), &dfs)
            }
            .map_err(|e| e.to_string())?;
            if args.des {
                workers =
                    (0..topo.nodes as usize).map(|n| PaconWorkerProc::new(r.take_worker(n))).collect();
            }
            region = Some(r);
        }
        other => return Err(format!("unknown backend: {other}")),
    }
    let client_for = |i: u32| -> Box<dyn FileSystem> {
        match args.backend.as_str() {
            "beegfs" => Box::new(dfs.client()),
            "indexfs" => Box::new(
                indexfs_cluster.as_ref().expect("indexfs deployed").client(topo.node_of(ClientId(i))),
            ),
            _ => Box::new(region.as_ref().expect("pacon launched").client(ClientId(i))),
        }
    };

    if args.des {
        let clients: Vec<FsOpClient> = lists
            .into_iter()
            .enumerate()
            .map(|(i, ops)| FsOpClient::new(client_for(i as u32), cred, ops))
            .collect();
        let res = run_closed_loop(clients, workers);
        println!(
            "replayed {total_ops} ops on {} ({} clients): {:.0} ops/s virtual, makespan {:.3} ms",
            args.backend,
            needed,
            res.ops_per_sec(),
            res.makespan_ns as f64 / 1e6
        );
        if res.background_ops > 0 {
            println!(
                "commit processes applied {} ops; drained by {:.3} ms virtual",
                res.background_ops,
                res.drained_ns as f64 / 1e6
            );
        }
    } else {
        let run = workloads::threaded::run_threads(
            |i| client_for(i as u32),
            cred,
            lists,
        );
        println!(
            "replayed {} ops on {} ({} ok, {} errors) in {:?}",
            total_ops, args.backend, run.ok_ops, run.err_ops, run.wall
        );
        if let Some(r) = &region {
            r.quiesce();
            println!("pacon commit queues drained; backup copy is current");
        }
    }
    if let Some(r) = region {
        if !args.des {
            r.shutdown().map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut argv = std::env::args();
    let _bin = argv.next();
    match argv.next().as_deref() {
        Some("replay") => match parse_args(argv) {
            Ok(args) => match replay(args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}\nrun `pacon-repro` for usage");
                ExitCode::FAILURE
            }
        },
        Some("trace-example") => {
            print!("{SAMPLE_TRACE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage:\n  pacon-repro replay <trace-file> [--backend pacon|beegfs|indexfs] \
                 [--workspace <dir>] [--nodes N] [--clients-per-node M] [--des]\n  \
                 pacon-repro trace-example"
            );
            ExitCode::FAILURE
        }
    }
}
